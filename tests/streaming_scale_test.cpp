// The streaming-scale contract: a 10^6-payment run completes without ever
// materialising the workload — the engine pulls one payment at a time, and
// EngineMetrics::peak_payment_buffer proves the arrival pipeline stayed at
// the concurrency level, not the total size. The retention contract
// (ISSUE 4) extends this to the resolved side: with
// EngineConfig::retain_resolved = false, resolved PaymentStates are evicted
// once unreferenced, so peak_resident_states also stays at the concurrency
// level while states_evicted counts every payment — and every reported
// metric is identical to the retained run.

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "pcn/network.h"
#include "pcn/traffic_source.h"
#include "routing/engine.h"

namespace splicer::routing {
namespace {

/// Cheapest possible policy: reject every payment on arrival. The engine
/// still runs the full arrival + deadline event machinery per payment.
class RejectingRouter : public Router {
 public:
  [[nodiscard]] std::string name() const override { return "rejecting"; }
  void on_payment(Engine& engine, const pcn::Payment& payment) override {
    engine.fail_payment(payment.id, FailReason::kNoPath);
  }
};

/// Forwards every payment over the single channel 0 -> 1.
class ForwardingRouter : public Router {
 public:
  [[nodiscard]] std::string name() const override { return "forwarding"; }
  void on_payment(Engine& engine, const pcn::Payment& payment) override {
    TransactionUnit tu;
    tu.payment = payment.id;
    tu.value = payment.value;
    tu.deadline = payment.deadline;
    tu.path.nodes = {payment.sender, payment.receiver};
    tu.path.edges = {0};
    tu.hop_amounts = {payment.value};
    engine.send_tu(std::move(tu));
  }
};

pcn::Network pair_network(common::Amount per_side) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  return pcn::Network::with_uniform_funds(std::move(g), per_side);
}

TEST(StreamingScale, MillionPaymentRunNeverMaterialisesTheWorkload) {
  pcn::WorkloadConfig config;
  config.payment_count = 1'000'000;
  config.horizon_seconds = 10'000.0;
  config.streaming = true;

  auto source = std::make_unique<pcn::SyntheticSource>(
      std::vector<pcn::NodeId>{0, 1}, config, common::Rng(123));

  RejectingRouter router;
  Engine engine(pair_network(common::whole_tokens(100)), std::move(source),
                router, {});
  const auto metrics = engine.run();

  EXPECT_EQ(metrics.payments_generated, 1'000'000u);
  EXPECT_EQ(metrics.payments_failed, 1'000'000u);
  // Every payment resolves inside its own arrival event, so the pipeline
  // never holds more than the one look-ahead pull plus the arriving
  // payment.
  EXPECT_LE(metrics.peak_payment_buffer, 2u);
}

TEST(StreamingScale, BusyStreamingRunKeepsTheBufferAtConcurrencyLevel) {
  pcn::WorkloadConfig config;
  config.payment_count = 50'000;
  config.horizon_seconds = 500.0;
  config.streaming = true;

  auto source = std::make_unique<pcn::SyntheticSource>(
      std::vector<pcn::NodeId>{0, 1}, config, common::Rng(9));

  ForwardingRouter router;
  Engine engine(pair_network(common::whole_tokens(500'000)),
                std::move(source), router, {});
  const auto metrics = engine.run();

  EXPECT_EQ(metrics.payments_generated, 50'000u);
  EXPECT_GT(metrics.payments_completed, 0u);
  // ~100 arrivals/s against a ~3.5 s payment lifetime: the resident window
  // is a few hundred payments, never the 50k workload.
  EXPECT_GT(metrics.peak_payment_buffer, 1u);
  EXPECT_LT(metrics.peak_payment_buffer, 5'000u);
}

TEST(StreamingScale, EvictingMillionPaymentRunHoldsOnlyTheActiveWindow) {
  pcn::WorkloadConfig config;
  config.payment_count = 1'000'000;
  config.horizon_seconds = 10'000.0;
  config.streaming = true;

  auto source = std::make_unique<pcn::SyntheticSource>(
      std::vector<pcn::NodeId>{0, 1}, config, common::Rng(123));

  RejectingRouter router;
  EngineConfig engine_config;
  engine_config.retain_resolved = false;
  Engine engine(pair_network(common::whole_tokens(100)), std::move(source),
                router, engine_config);
  const auto metrics = engine.run();

  EXPECT_EQ(metrics.payments_generated, 1'000'000u);
  EXPECT_EQ(metrics.payments_failed, 1'000'000u);
  // Every state is evicted once its (no-op) deadline event fires, so the
  // resident set is bounded by the ~100/s arrival rate times the 3 s
  // payment timeout — the concurrency level, never the 10^6 total.
  EXPECT_EQ(metrics.states_evicted, 1'000'000u);
  EXPECT_LT(metrics.peak_resident_states, 2'000u);
  EXPECT_GT(metrics.peak_resident_states, 0u);
  // The streamed accumulators carry the resolved outcomes.
  EXPECT_EQ(metrics.tus_per_payment_stats.count(), 1'000'000u);
}

TEST(StreamingScale, EvictionAndRetentionReportIdenticalMetrics) {
  pcn::WorkloadConfig config;
  config.payment_count = 20'000;
  config.horizon_seconds = 200.0;
  config.streaming = true;

  // Both engine modes: exact per-hop settlement and the batched epoch path
  // (deferred eviction through cancelled deadline events + epoch buffers).
  for (const double epoch_s : {0.0, 0.01}) {
    const auto run = [&](bool retain) {
      auto source = std::make_unique<pcn::SyntheticSource>(
          std::vector<pcn::NodeId>{0, 1}, config, common::Rng(9));
      ForwardingRouter router;
      EngineConfig engine_config;
      engine_config.retain_resolved = retain;
      engine_config.settlement_epoch_s = epoch_s;
      Engine engine(pair_network(common::whole_tokens(500'000)),
                    std::move(source), router, engine_config);
      return engine.run();
    };
    const auto retained = run(true);
    const auto evicted = run(false);

    // Identical event streams: every reported metric matches bit for bit.
    EXPECT_EQ(retained.payments_generated, evicted.payments_generated);
    EXPECT_EQ(retained.payments_completed, evicted.payments_completed);
    EXPECT_EQ(retained.payments_failed, evicted.payments_failed);
    EXPECT_EQ(retained.value_completed, evicted.value_completed);
    EXPECT_DOUBLE_EQ(retained.tsr(), evicted.tsr());
    EXPECT_DOUBLE_EQ(retained.average_delay_s(), evicted.average_delay_s());
    EXPECT_DOUBLE_EQ(retained.completion_delay_stats.sum(),
                     evicted.completion_delay_stats.sum());
    EXPECT_DOUBLE_EQ(retained.tus_per_payment_stats.mean(),
                     evicted.tus_per_payment_stats.mean());
    EXPECT_EQ(retained.failed_delivered_value, evicted.failed_delivered_value);
    EXPECT_EQ(retained.tus_sent, evicted.tus_sent);
    EXPECT_EQ(retained.tus_delivered, evicted.tus_delivered);
    EXPECT_EQ(retained.tus_failed, evicted.tus_failed);
    EXPECT_EQ(retained.messages.total(), evicted.messages.total());
    EXPECT_EQ(retained.scheduler_events, evicted.scheduler_events);
    EXPECT_EQ(retained.payment_fail_reasons, evicted.payment_fail_reasons);

    // Only the memory profile differs.
    EXPECT_EQ(retained.states_evicted, 0u);
    EXPECT_EQ(retained.peak_resident_states, retained.payments_generated);
    EXPECT_EQ(evicted.states_evicted, evicted.payments_generated);
    EXPECT_LT(evicted.peak_resident_states, 5'000u);
    EXPECT_LT(evicted.peak_resident_states, retained.peak_resident_states);
  }
}

}  // namespace
}  // namespace splicer::routing
