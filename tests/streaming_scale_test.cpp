// The streaming-scale contract (ISSUE 3 acceptance): a 10^6-payment run
// completes without ever materialising the workload — the engine pulls one
// payment at a time, and EngineMetrics::peak_payment_buffer proves the
// arrival pipeline stayed at the concurrency level, not the total size.

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "pcn/network.h"
#include "pcn/traffic_source.h"
#include "routing/engine.h"

namespace splicer::routing {
namespace {

/// Cheapest possible policy: reject every payment on arrival. The engine
/// still runs the full arrival + deadline event machinery per payment.
class RejectingRouter : public Router {
 public:
  [[nodiscard]] std::string name() const override { return "rejecting"; }
  void on_payment(Engine& engine, const pcn::Payment& payment) override {
    engine.fail_payment(payment.id, FailReason::kNoPath);
  }
};

/// Forwards every payment over the single channel 0 -> 1.
class ForwardingRouter : public Router {
 public:
  [[nodiscard]] std::string name() const override { return "forwarding"; }
  void on_payment(Engine& engine, const pcn::Payment& payment) override {
    TransactionUnit tu;
    tu.payment = payment.id;
    tu.value = payment.value;
    tu.deadline = payment.deadline;
    tu.path.nodes = {payment.sender, payment.receiver};
    tu.path.edges = {0};
    tu.hop_amounts = {payment.value};
    engine.send_tu(std::move(tu));
  }
};

pcn::Network pair_network(common::Amount per_side) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  return pcn::Network::with_uniform_funds(std::move(g), per_side);
}

TEST(StreamingScale, MillionPaymentRunNeverMaterialisesTheWorkload) {
  pcn::WorkloadConfig config;
  config.payment_count = 1'000'000;
  config.horizon_seconds = 10'000.0;
  config.streaming = true;

  auto source = std::make_unique<pcn::SyntheticSource>(
      std::vector<pcn::NodeId>{0, 1}, config, common::Rng(123));

  RejectingRouter router;
  Engine engine(pair_network(common::whole_tokens(100)), std::move(source),
                router, {});
  const auto metrics = engine.run();

  EXPECT_EQ(metrics.payments_generated, 1'000'000u);
  EXPECT_EQ(metrics.payments_failed, 1'000'000u);
  // Every payment resolves inside its own arrival event, so the pipeline
  // never holds more than the one look-ahead pull plus the arriving
  // payment.
  EXPECT_LE(metrics.peak_payment_buffer, 2u);
}

TEST(StreamingScale, BusyStreamingRunKeepsTheBufferAtConcurrencyLevel) {
  pcn::WorkloadConfig config;
  config.payment_count = 50'000;
  config.horizon_seconds = 500.0;
  config.streaming = true;

  auto source = std::make_unique<pcn::SyntheticSource>(
      std::vector<pcn::NodeId>{0, 1}, config, common::Rng(9));

  ForwardingRouter router;
  Engine engine(pair_network(common::whole_tokens(500'000)),
                std::move(source), router, {});
  const auto metrics = engine.run();

  EXPECT_EQ(metrics.payments_generated, 50'000u);
  EXPECT_GT(metrics.payments_completed, 0u);
  // ~100 arrivals/s against a ~3.5 s payment lifetime: the resident window
  // is a few hundred payments, never the 50k workload.
  EXPECT_GT(metrics.peak_payment_buffer, 1u);
  EXPECT_LT(metrics.peak_payment_buffer, 5'000u);
}

}  // namespace
}  // namespace splicer::routing
