// Larger-scale LP/MILP exercises: transportation-style structured
// problems with known optima, iteration-limit behaviour, and the scaling
// corner the placement MILP lives in.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/branch_and_bound.h"
#include "lp/simplex.h"

namespace splicer::lp {
namespace {

/// min sum c_ij x_ij  s.t. sum_j x_ij = supply_i, sum_i x_ij = demand_j.
/// With supplies == demands == 1 this is the assignment problem; the LP
/// relaxation is integral (totally unimodular), so simplex alone must
/// return the optimal assignment.
TEST(SimplexStress, AssignmentProblemIsIntegralAndOptimal) {
  common::Rng rng(42);
  const int n = 8;
  Model m;
  std::vector<std::vector<int>> var(n, std::vector<int>(n));
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      var[i][j] = m.add_variable("x", 0.0, 1.0);
      cost[i][j] = rng.uniform(1.0, 10.0);
    }
  }
  LinearExpr objective;
  for (int i = 0; i < n; ++i) {
    LinearExpr row_sum, col_sum;
    for (int j = 0; j < n; ++j) {
      row_sum.push_back({var[i][j], 1.0});
      col_sum.push_back({var[j][i], 1.0});
      objective.push_back({var[i][j], cost[i][j]});
    }
    m.add_constraint(std::move(row_sum), Relation::kEqual, 1.0);
    m.add_constraint(std::move(col_sum), Relation::kEqual, 1.0);
  }
  m.set_objective(std::move(objective));

  const auto s = SimplexSolver().solve(m);
  ASSERT_TRUE(s.ok());
  // Integrality of the vertex solution.
  for (const double v : s.values) {
    EXPECT_LT(std::min(std::abs(v), std::abs(v - 1.0)), 1e-7);
  }
  // Cross-check against brute-force over all permutations (8! = 40320).
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  double best = 1e100;
  do {
    double total = 0;
    for (int i = 0; i < n; ++i) total += cost[i][perm[i]];
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_NEAR(s.objective, best, 1e-6);
}

TEST(SimplexStress, IterationLimitReportsCleanly) {
  common::Rng rng(1);
  Model m;
  const int n = 30;
  for (int j = 0; j < n; ++j) (void)m.add_variable("x", 0.0, 10.0);
  for (int c = 0; c < 20; ++c) {
    LinearExpr expr;
    for (int j = 0; j < n; ++j) expr.push_back({j, rng.uniform(0.1, 2.0)});
    m.add_constraint(std::move(expr), Relation::kLessEqual, rng.uniform(10, 50));
  }
  LinearExpr obj;
  for (int j = 0; j < n; ++j) obj.push_back({j, rng.uniform(0.5, 2.0)});
  m.set_objective(std::move(obj), Sense::kMaximize);

  SimplexOptions options;
  options.max_iterations = 1;  // guaranteed to be insufficient
  const auto s = SimplexSolver(options).solve(m);
  EXPECT_EQ(s.status, SolveStatus::kIterationLimit);

  // And with the default budget the same model solves.
  const auto full = SimplexSolver().solve(m);
  EXPECT_TRUE(full.ok());
}

TEST(SimplexStress, MediumRandomLpsStayFeasibleAndBounded) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    common::Rng rng(seed);
    Model m;
    const int n = 40;
    for (int j = 0; j < n; ++j) (void)m.add_variable("x", 0.0, rng.uniform(1, 5));
    for (int c = 0; c < 25; ++c) {
      LinearExpr expr;
      for (int j = 0; j < n; ++j) {
        if (rng.bernoulli(0.4)) expr.push_back({j, rng.uniform(0.0, 3.0)});
      }
      if (expr.empty()) continue;
      m.add_constraint(std::move(expr), Relation::kLessEqual, rng.uniform(5, 30));
    }
    LinearExpr obj;
    for (int j = 0; j < n; ++j) obj.push_back({j, rng.uniform(-1.0, 2.0)});
    m.set_objective(std::move(obj), Sense::kMaximize);
    const auto s = SimplexSolver().solve(m);
    ASSERT_TRUE(s.ok()) << "seed " << seed << ": " << to_string(s.status);
    EXPECT_TRUE(m.is_feasible(s.values, 1e-6)) << "seed " << seed;
  }
}

TEST(BnbStress, KnapsackFamilyMatchesDynamicProgramming) {
  // 0/1 knapsack: B&B vs DP over integer weights.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    common::Rng rng(seed * 97);
    const int n = 14;
    const int capacity = 40;
    std::vector<int> weight(n);
    std::vector<double> value(n);
    Model m;
    LinearExpr weights_expr, values_expr;
    for (int j = 0; j < n; ++j) {
      weight[j] = static_cast<int>(rng.uniform_int(1, 15));
      value[j] = rng.uniform(1.0, 20.0);
      (void)m.add_binary("item");
      weights_expr.push_back({j, static_cast<double>(weight[j])});
      values_expr.push_back({j, value[j]});
    }
    m.add_constraint(std::move(weights_expr), Relation::kLessEqual, capacity);
    m.set_objective(std::move(values_expr), Sense::kMaximize);

    std::vector<double> dp(capacity + 1, 0.0);
    for (int j = 0; j < n; ++j) {
      for (int w = capacity; w >= weight[j]; --w) {
        dp[w] = std::max(dp[w], dp[w - weight[j]] + value[j]);
      }
    }
    const auto s = BranchAndBoundSolver().solve(m);
    ASSERT_TRUE(s.ok()) << "seed " << seed;
    EXPECT_NEAR(s.objective, dp[capacity], 1e-6) << "seed " << seed;
  }
}

TEST(BnbStress, IntegerVariablesBeyondBinary) {
  // max 3x + 2y, 2x + y <= 7, x + 3y <= 9, x,y integer >= 0.
  // LP optimum (2.4, 2.2); integer optimum: enumerate: x=3,y=1 -> 11;
  // x=2,y=2 -> 10; x=3,y=2 infeasible (2*3+2=8>7). Optimal 11.
  Model m;
  const int x = m.add_variable("x", 0.0, 10.0, VarKind::kInteger);
  const int y = m.add_variable("y", 0.0, 10.0, VarKind::kInteger);
  m.add_constraint({{x, 2.0}, {y, 1.0}}, Relation::kLessEqual, 7.0);
  m.add_constraint({{x, 1.0}, {y, 3.0}}, Relation::kLessEqual, 9.0);
  m.set_objective({{x, 3.0}, {y, 2.0}}, Sense::kMaximize);
  const auto s = BranchAndBoundSolver().solve(m);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 11.0, 1e-9);
  EXPECT_NEAR(s.values[0], 3.0, 1e-9);
  EXPECT_NEAR(s.values[1], 1.0, 1e-9);
}

}  // namespace
}  // namespace splicer::lp
