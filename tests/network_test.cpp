#include "pcn/network.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "graph/generators.h"

namespace splicer::pcn {
namespace {

using common::whole_tokens;

TEST(Network, UniformFunds) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const Network net = Network::with_uniform_funds(std::move(g), whole_tokens(5));
  EXPECT_EQ(net.channel_count(), 2u);
  EXPECT_EQ(net.total_funds(), whole_tokens(20));
  EXPECT_EQ(net.available_from(0, 0), whole_tokens(5));
}

TEST(Network, FundsVectorSizeValidated) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(Network(std::move(g), {1, 2}, {1}), std::invalid_argument);
}

TEST(Network, CapacityMirrorsChannelTotals) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  const Network net(std::move(g), {whole_tokens(3)}, {whole_tokens(7)});
  EXPECT_DOUBLE_EQ(net.topology().edge(0).capacity, 10.0);
  EXPECT_EQ(net.channel(0).capacity(), whole_tokens(10));
}

TEST(Network, SampledFundsMatchCalibration) {
  common::Rng rng(1);
  auto g = graph::watts_strogatz(300, 8, 0.15, rng);
  const Network net = Network::with_sampled_funds(std::move(g), 1.0, rng);
  common::RunningStats side_tokens;
  for (ChannelId c = 0; c < net.channel_count(); ++c) {
    side_tokens.add(common::to_tokens(net.channel(c).available(Direction::kForward)));
    side_tokens.add(common::to_tokens(net.channel(c).available(Direction::kBackward)));
  }
  EXPECT_GE(side_tokens.min(), 10.0);             // paper: min channel size 10
  EXPECT_NEAR(side_tokens.mean(), 403.0, 60.0);   // paper: mean 403
}

TEST(Network, FundScaleMultiplies) {
  common::Rng rng1(2), rng2(2);
  auto g1 = graph::watts_strogatz(100, 6, 0.15, rng1);
  auto g2 = graph::watts_strogatz(100, 6, 0.15, rng2);
  const Network base = Network::with_sampled_funds(std::move(g1), 1.0, rng1);
  const Network doubled = Network::with_sampled_funds(std::move(g2), 2.0, rng2);
  // Identical topology + rng stream, scaled funds.
  EXPECT_NEAR(static_cast<double>(doubled.total_funds()),
              2.0 * static_cast<double>(base.total_funds()),
              static_cast<double>(base.total_funds()) * 0.01);
}

TEST(Network, DirectionFromAndBalanceVectors) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  const Network net(std::move(g), {whole_tokens(4)}, {whole_tokens(6)});
  EXPECT_EQ(net.direction_from(0, 0), Direction::kForward);
  EXPECT_EQ(net.direction_from(0, 1), Direction::kBackward);
  EXPECT_DOUBLE_EQ(net.forward_balances_tokens()[0], 4.0);
  EXPECT_DOUBLE_EQ(net.backward_balances_tokens()[0], 6.0);
}

TEST(Network, ConservationUnderChannelOperations) {
  common::Rng rng(3);
  auto g = graph::watts_strogatz(50, 4, 0.2, rng);
  Network net = Network::with_sampled_funds(std::move(g), 1.0, rng);
  const Amount before = net.total_funds();
  // Random lock/settle/refund storm.
  for (int i = 0; i < 1000; ++i) {
    auto& ch = net.channel(static_cast<ChannelId>(rng.index(net.channel_count())));
    const Direction d = rng.bernoulli(0.5) ? Direction::kForward : Direction::kBackward;
    const Amount v = whole_tokens(1 + static_cast<Amount>(rng.index(5)));
    if (ch.lock(d, v)) {
      if (rng.bernoulli(0.5)) {
        ch.settle(d, v);
      } else {
        ch.refund(d, v);
      }
    }
  }
  EXPECT_EQ(net.total_funds(), before);
}

}  // namespace
}  // namespace splicer::pcn
