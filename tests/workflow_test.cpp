#include "splicer/workflow.h"

#include <gtest/gtest.h>

#include <numeric>

#include "splicer/demand_codec.h"

namespace splicer::core {
namespace {

TEST(DemandCodec, RoundTrip) {
  const PaymentDemand demand{17, 42, common::tokens(13.25)};
  const auto bytes = encode_demand(demand);
  EXPECT_EQ(bytes.size(), 16u);
  const auto decoded = decode_demand(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, demand);
}

TEST(DemandCodec, RejectsWrongLength) {
  EXPECT_FALSE(decode_demand({1, 2, 3}).has_value());
  EXPECT_FALSE(decode_demand({}).has_value());
}

class WorkflowFixture : public ::testing::Test {
 protected:
  WorkflowFixture()
      : rng_(1234), kmg_(5, rng_.fork()), workflow_(kmg_, rng_) {}

  common::Rng rng_;
  crypto::KeyManagementGroup kmg_;
  PaymentWorkflow workflow_;
};

TEST_F(WorkflowFixture, SuccessfulEndToEnd) {
  const auto result = workflow_.execute({1, 2, common::whole_tokens(10)});
  EXPECT_TRUE(result.success);
  EXPECT_GE(result.trace.size(), 8u);
  EXPECT_GT(result.messages, result.trace.size());  // per-TU messages add up
}

TEST_F(WorkflowFixture, TuValuesSumToDemand) {
  const auto value = common::tokens(37.5);
  const auto result = workflow_.execute({3, 4, value});
  ASSERT_TRUE(result.success);
  const auto sum = std::accumulate(result.tu_values.begin(),
                                   result.tu_values.end(), pcn::Amount{0});
  EXPECT_EQ(sum, value);
}

TEST_F(WorkflowFixture, TuBoundsRespected) {
  for (const double tokens : {1.0, 3.999, 4.0, 4.001, 5.0, 88.0, 250.75}) {
    const auto result = workflow_.execute({1, 2, common::tokens(tokens)});
    ASSERT_TRUE(result.success) << tokens;
    for (const auto v : result.tu_values) {
      EXPECT_GE(v, common::whole_tokens(1)) << tokens;  // Min-TU
      EXPECT_LE(v, common::whole_tokens(4)) << tokens;  // Max-TU
    }
  }
}

TEST_F(WorkflowFixture, SubTokenCrumbFoldedIntoLastTu) {
  // 4.5 tokens cannot be [4, 0.5] (0.5 < Min-TU); must be [3.5, 1] or
  // similar with every piece >= 1 token.
  const auto tus = workflow_.split_into_tus(common::tokens(4.5));
  pcn::Amount sum = 0;
  for (const auto v : tus) {
    EXPECT_GE(v, common::whole_tokens(1));
    sum += v;
  }
  EXPECT_EQ(sum, common::tokens(4.5));
}

TEST_F(WorkflowFixture, FreshTidPerExecution) {
  const auto a = workflow_.execute({1, 2, common::whole_tokens(2)});
  const auto b = workflow_.execute({1, 2, common::whole_tokens(2)});
  EXPECT_NE(a.tid, b.tid);
}

TEST_F(WorkflowFixture, KmgIssuesOneKeyPerTidPlusPerTuid) {
  const auto before = kmg_.issued_count();
  const auto result = workflow_.execute({1, 2, common::whole_tokens(10)});
  ASSERT_TRUE(result.success);
  EXPECT_EQ(kmg_.issued_count() - before, 1 + result.tu_count);
}

TEST_F(WorkflowFixture, SplitCountMatchesCeiling) {
  // 10 tokens / Max-TU 4 -> 3 TUs.
  EXPECT_EQ(workflow_.split_into_tus(common::whole_tokens(10)).size(), 3u);
  EXPECT_EQ(workflow_.split_into_tus(common::whole_tokens(4)).size(), 1u);
  EXPECT_EQ(workflow_.split_into_tus(common::whole_tokens(8)).size(), 2u);
}

TEST(WorkflowConfigTest, BadBoundsRejected) {
  common::Rng rng(1);
  crypto::KeyManagementGroup kmg(3, rng.fork());
  WorkflowConfig config;
  config.min_tu = 0;
  EXPECT_THROW(PaymentWorkflow(kmg, rng, config), std::invalid_argument);
  config.min_tu = common::whole_tokens(5);
  config.max_tu = common::whole_tokens(4);
  EXPECT_THROW(PaymentWorkflow(kmg, rng, config), std::invalid_argument);
}

}  // namespace
}  // namespace splicer::core
