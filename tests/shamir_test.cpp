#include "crypto/shamir.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace splicer::crypto {
namespace {

TEST(Shamir, SplitAndReconstruct) {
  common::Rng rng(1);
  const std::uint64_t secret = 0x123456789abcdefULL;
  const auto shares = split_secret(secret, 5, 3, rng);
  ASSERT_EQ(shares.size(), 5u);
  EXPECT_EQ(reconstruct_secret({shares[0], shares[1], shares[2]}), secret);
}

TEST(Shamir, AnyThresholdSubsetWorks) {
  common::Rng rng(2);
  const std::uint64_t secret = 42;
  const auto shares = split_secret(secret, 5, 3, rng);
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = a + 1; b < 5; ++b) {
      for (std::size_t c = b + 1; c < 5; ++c) {
        EXPECT_EQ(reconstruct_secret({shares[a], shares[b], shares[c]}), secret);
      }
    }
  }
}

TEST(Shamir, MoreThanThresholdStillWorks) {
  common::Rng rng(3);
  const std::uint64_t secret = 777;
  const auto shares = split_secret(secret, 6, 3, rng);
  EXPECT_EQ(reconstruct_secret(shares), secret);
}

TEST(Shamir, BelowThresholdGivesWrongSecret) {
  // With t-1 shares the interpolation is underdetermined; reconstructing
  // from 2 of a threshold-3 split yields a different polynomial constant.
  common::Rng rng(4);
  const std::uint64_t secret = 991;
  const auto shares = split_secret(secret, 5, 3, rng);
  EXPECT_NE(reconstruct_secret({shares[0], shares[1]}), secret);
}

TEST(Shamir, ThresholdOneIsReplication) {
  common::Rng rng(5);
  const auto shares = split_secret(5150, 4, 1, rng);
  for (const auto& share : shares) {
    EXPECT_EQ(reconstruct_secret({share}), 5150u);
  }
}

TEST(Shamir, FullThreshold) {
  common::Rng rng(6);
  const std::uint64_t secret = kPrime - 2;
  const auto shares = split_secret(secret, 4, 4, rng);
  EXPECT_EQ(reconstruct_secret(shares), secret);
}

TEST(Shamir, Validation) {
  common::Rng rng(7);
  EXPECT_THROW((void)split_secret(1, 3, 0, rng), std::invalid_argument);
  EXPECT_THROW((void)split_secret(1, 3, 4, rng), std::invalid_argument);
  EXPECT_THROW((void)split_secret(kPrime, 3, 2, rng), std::invalid_argument);
  EXPECT_THROW((void)reconstruct_secret({}), std::invalid_argument);
}

TEST(Shamir, DuplicateSharePointsRejected) {
  common::Rng rng(8);
  const auto shares = split_secret(9, 3, 2, rng);
  EXPECT_THROW((void)reconstruct_secret({shares[0], shares[0]}),
               std::invalid_argument);
}

TEST(Shamir, SharesDifferAcrossSplits) {
  common::Rng rng(9);
  const auto a = split_secret(1234, 3, 2, rng);
  const auto b = split_secret(1234, 3, 2, rng);
  EXPECT_NE(a[0].y, b[0].y);  // fresh polynomial each time
}

}  // namespace
}  // namespace splicer::crypto
