#include "graph/graph.h"

#include <gtest/gtest.h>

namespace splicer::graph {
namespace {

TEST(Graph, AddEdgeCreatesAdjacency) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 2.0, 7.0);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.edge(e).weight, 2.0);
  EXPECT_EQ(g.edge(e).capacity, 7.0);
}

TEST(Graph, OtherEnd) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 2);
  EXPECT_EQ(g.other_end(e, 0), 2u);
  EXPECT_EQ(g.other_end(e, 2), 0u);
  EXPECT_THROW((void)g.other_end(e, 1), std::invalid_argument);
}

TEST(Graph, SelfLoopRejected) {
  Graph g(2);
  EXPECT_THROW((void)g.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, OutOfRangeNodeRejected) {
  Graph g(2);
  EXPECT_THROW((void)g.add_edge(0, 2), std::out_of_range);
}

TEST(Graph, FindEdge) {
  Graph g(4);
  const EdgeId e = g.add_edge(1, 3);
  EXPECT_EQ(g.find_edge(1, 3), e);
  EXPECT_EQ(g.find_edge(3, 1), e);
  EXPECT_EQ(g.find_edge(0, 1), kInvalidEdge);
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, ParallelEdgesAllowed) {
  Graph g(2);
  const EdgeId a = g.add_edge(0, 1);
  const EdgeId b = g.add_edge(0, 1);
  EXPECT_NE(a, b);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Graph, SetWeightAndCapacity) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1);
  g.set_weight(e, 5.0);
  g.set_capacity(e, 9.0);
  EXPECT_EQ(g.edge(e).weight, 5.0);
  EXPECT_EQ(g.edge(e).capacity, 9.0);
}

TEST(Path, BottleneckIsMinimumCapacity) {
  Graph g(3);
  const EdgeId e1 = g.add_edge(0, 1, 1.0, 10.0);
  const EdgeId e2 = g.add_edge(1, 2, 1.0, 3.0);
  Path p{{0, 1, 2}, {e1, e2}, 2.0};
  EXPECT_DOUBLE_EQ(p.bottleneck(g), 3.0);
}

TEST(Path, ValidityChecks) {
  Graph g(4);
  const EdgeId e1 = g.add_edge(0, 1);
  const EdgeId e2 = g.add_edge(1, 2);
  const EdgeId e3 = g.add_edge(2, 0);

  EXPECT_TRUE(is_valid_path(g, Path{{0, 1, 2}, {e1, e2}, 2.0}));
  // Wrong edge order.
  EXPECT_FALSE(is_valid_path(g, Path{{0, 1, 2}, {e2, e1}, 2.0}));
  // Node/edge count mismatch.
  EXPECT_FALSE(is_valid_path(g, Path{{0, 1}, {e1, e2}, 2.0}));
  // Revisiting a node (non-simple).
  EXPECT_FALSE(is_valid_path(g, Path{{0, 1, 2, 0, 1}, {e1, e2, e3, e1}, 4.0}));
}

TEST(Path, ToStringShowsNodes) {
  Path p{{3, 1, 4}, {0, 1}, 2.0};
  EXPECT_EQ(p.to_string(), "3 -> 1 -> 4");
}

TEST(Path, AccessorsAndEquality) {
  Path p{{5, 6}, {0}, 1.0};
  EXPECT_EQ(p.source(), 5u);
  EXPECT_EQ(p.target(), 6u);
  EXPECT_EQ(p.hop_count(), 1u);
  EXPECT_FALSE(p.empty());
  Path q = p;
  EXPECT_EQ(p, q);
}

}  // namespace
}  // namespace splicer::graph
