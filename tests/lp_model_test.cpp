#include "lp/model.h"

#include <gtest/gtest.h>

namespace splicer::lp {
namespace {

TEST(Model, VariablesAndBounds) {
  Model m;
  const int x = m.add_variable("x", 0.0, 5.0);
  const int b = m.add_binary("b");
  EXPECT_EQ(x, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(m.variable_count(), 2u);
  EXPECT_EQ(m.variable(b).kind, VarKind::kBinary);
  EXPECT_EQ(m.variable(b).upper, 1.0);
}

TEST(Model, RejectsBadBounds) {
  Model m;
  EXPECT_THROW((void)m.add_variable("x", 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)m.add_variable("x", -kInfinity, 1.0), std::invalid_argument);
}

TEST(Model, ConstraintNormalisesDuplicates) {
  Model m;
  const int x = m.add_variable("x", 0.0, 10.0);
  m.add_constraint({{x, 1.0}, {x, 2.0}}, Relation::kLessEqual, 6.0);
  const auto& c = m.constraint(0);
  ASSERT_EQ(c.expr.size(), 1u);
  EXPECT_DOUBLE_EQ(c.expr[0].coeff, 3.0);
}

TEST(Model, ConstraintRejectsUnknownVariable) {
  Model m;
  (void)m.add_variable("x", 0.0, 1.0);
  EXPECT_THROW(m.add_constraint({{5, 1.0}}, Relation::kEqual, 1.0),
               std::out_of_range);
}

TEST(Model, EvaluateObjective) {
  Model m;
  const int x = m.add_variable("x", 0.0, 10.0);
  const int y = m.add_variable("y", 0.0, 10.0);
  m.set_objective({{x, 2.0}, {y, -1.0}});
  EXPECT_DOUBLE_EQ(m.evaluate_objective({3.0, 4.0}), 2.0);
}

TEST(Model, FeasibilityChecker) {
  Model m;
  const int x = m.add_variable("x", 0.0, 10.0);
  const int b = m.add_binary("b");
  m.add_constraint({{x, 1.0}, {b, 5.0}}, Relation::kLessEqual, 8.0);
  m.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 2.0);
  EXPECT_TRUE(m.is_feasible({3.0, 1.0}));
  EXPECT_FALSE(m.is_feasible({4.0, 1.0}));   // violates <= 8
  EXPECT_FALSE(m.is_feasible({1.0, 0.0}));   // violates >= 2
  EXPECT_FALSE(m.is_feasible({3.0, 0.5}));   // fractional binary
  EXPECT_FALSE(m.is_feasible({11.0, 0.0}));  // bound violation
  EXPECT_FALSE(m.is_feasible({3.0}));        // wrong arity
}

TEST(Model, HasIntegerVariables) {
  Model continuous;
  (void)continuous.add_variable("x", 0.0, 1.0);
  EXPECT_FALSE(continuous.has_integer_variables());
  Model mixed;
  (void)mixed.add_variable("x", 0.0, 1.0);
  (void)mixed.add_binary("b");
  EXPECT_TRUE(mixed.has_integer_variables());
}

TEST(Model, StatusNames) {
  EXPECT_STREQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(SolveStatus::kUnbounded), "unbounded");
}

}  // namespace
}  // namespace splicer::lp
