#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace splicer::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitmixKnownSequenceIsStable) {
  // Pin the exact output so cross-platform runs reproduce experiments.
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_EQ(first, 0xe220a8397b1dcdafULL);
  EXPECT_EQ(second, 0x6e789e6aa1b965f4ULL);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(-3, 3));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), -3);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsOneHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(19);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(29);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // Child and parent must not mirror each other.
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent.next_u64() == child.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, LogNormalIsPositive) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.log_normal(1.0, 2.0), 0.0);
}

}  // namespace
}  // namespace splicer::common
