#include "pcn/traffic_source.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "graph/generators.h"
#include "pcn/network.h"
#include "routing/engine.h"

namespace splicer::pcn {
namespace {

std::vector<NodeId> make_clients(std::size_t n, NodeId first = 0) {
  std::vector<NodeId> clients(n);
  for (std::size_t i = 0; i < n; ++i) clients[i] = first + static_cast<NodeId>(i);
  return clients;
}

void expect_same_payments(const std::vector<Payment>& a,
                          const std::vector<Payment>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "payment " << i;
    EXPECT_EQ(a[i].sender, b[i].sender) << "payment " << i;
    EXPECT_EQ(a[i].receiver, b[i].receiver) << "payment " << i;
    EXPECT_EQ(a[i].value, b[i].value) << "payment " << i;
    EXPECT_DOUBLE_EQ(a[i].arrival_time, b[i].arrival_time) << "payment " << i;
    EXPECT_DOUBLE_EQ(a[i].deadline, b[i].deadline) << "payment " << i;
  }
}

void expect_monotone(const std::vector<Payment>& payments) {
  for (std::size_t i = 1; i < payments.size(); ++i) {
    EXPECT_GE(payments[i].arrival_time, payments[i - 1].arrival_time);
  }
}

/// Writes a temp trace file; removed on destruction.
class TempTrace {
 public:
  explicit TempTrace(const std::string& content) {
    path_ = std::string(::testing::TempDir()) + "trace_" +
            std::to_string(counter_++) + ".csv";
    std::ofstream out(path_);
    out << content;
  }
  ~TempTrace() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

// ---- SyntheticSource ------------------------------------------------------

TEST(SyntheticSource, BitIdenticalToGeneratePayments) {
  WorkloadConfig config;
  config.payment_count = 600;
  const auto clients = make_clients(30);
  common::Rng legacy_rng(42);
  const auto legacy = generate_payments(clients, config, legacy_rng);

  SyntheticSource source(clients, config, common::Rng(42));
  const auto streamed = drain(source);
  expect_same_payments(legacy, streamed);
}

TEST(SyntheticSource, GeneratePaymentsStillAdvancesCallerRng) {
  // Two consecutive batches off one generator must differ (the legacy
  // contract: the caller's RNG stream moves forward).
  WorkloadConfig config;
  config.payment_count = 50;
  common::Rng rng(7);
  const auto a = generate_payments(make_clients(10), config, rng);
  const auto b = generate_payments(make_clients(10), config, rng);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff = any_diff || a[i].value != b[i].value ||
               a[i].arrival_time != b[i].arrival_time;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticSource, ResetReproducesTheStream) {
  WorkloadConfig config;
  config.payment_count = 300;
  SyntheticSource source(make_clients(20), config, common::Rng(1));
  source.reset(99);
  const auto a = drain(source);
  source.reset(99);
  const auto b = drain(source);
  expect_same_payments(a, b);
  EXPECT_EQ(a.size(), 300u);
  expect_monotone(a);

  source.reset(100);  // different seed, different stream
  const auto c = drain(source);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff = any_diff || a[i].value != c[i].value;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticSource, EstimatedCountAndExhaustion) {
  WorkloadConfig config;
  config.payment_count = 25;
  SyntheticSource source(make_clients(5), config, common::Rng(3));
  EXPECT_EQ(source.estimated_count(), 25u);
  const auto all = drain(source);
  EXPECT_EQ(all.size(), 25u);
  EXPECT_FALSE(source.next().has_value());  // stays exhausted
}

// ---- BurstySource ---------------------------------------------------------

TEST(BurstySource, DeterministicMonotoneAndCountMatched) {
  WorkloadConfig config;
  config.kind = WorkloadKind::kBursty;
  config.payment_count = 2000;
  config.horizon_seconds = 20.0;
  config.burst_period_s = 10.0;
  config.burst_amplitude = 0.9;
  BurstySource source(make_clients(25), config, common::Rng(5));
  const auto a = drain(source);
  EXPECT_EQ(a.size(), 2000u);
  expect_monotone(a);
  source.reset(5);
  // reset(5) re-derives from seed 5; a second reset must match it exactly.
  const auto b = drain(source);
  source.reset(5);
  expect_same_payments(b, drain(source));
}

TEST(BurstySource, ArrivalsFollowTheSinusoid) {
  WorkloadConfig config;
  config.kind = WorkloadKind::kBursty;
  config.payment_count = 4000;
  config.horizon_seconds = 40.0;
  config.burst_period_s = 10.0;
  config.burst_amplitude = 0.9;
  BurstySource source(make_clients(25), config, common::Rng(11));
  std::size_t peak_half = 0, trough_half = 0;
  for (const auto& p : drain(source)) {
    const double phase = std::fmod(p.arrival_time, config.burst_period_s);
    (phase < config.burst_period_s / 2 ? peak_half : trough_half) += 1;
  }
  // sin >= 0 on the first half-period: the rate there is up to 1.9x base
  // vs down to 0.1x base in the second half.
  EXPECT_GT(peak_half, 2 * trough_half);
}

// ---- HotspotShiftSource ---------------------------------------------------

TEST(HotspotShiftSource, RotatesThePopularityRanks) {
  WorkloadConfig config;
  config.kind = WorkloadKind::kHotspot;
  config.payment_count = 6000;
  config.horizon_seconds = 16.0;
  config.hotspot_shift_interval_s = 8.0;
  config.imbalance = 0.0;  // pure Zipf draws, no sink mass
  HotspotShiftSource source(make_clients(40), config, common::Rng(17));
  std::map<NodeId, std::size_t> first_half, second_half;
  for (const auto& p : drain(source)) {
    (p.arrival_time < 8.0 ? first_half : second_half)[p.sender] += 1;
  }
  const auto top = [](const std::map<NodeId, std::size_t>& counts) {
    NodeId best = 0;
    std::size_t best_count = 0;
    for (const auto& [node, count] : counts) {
      if (count > best_count) {
        best = node;
        best_count = count;
      }
    }
    return best;
  };
  // After the shift the rank order rotated by 10 of 40 positions: the
  // hottest sender moves (deterministic under this seed).
  EXPECT_NE(top(first_half), top(second_half));
}

TEST(HotspotShiftSource, ResetReproducesTheStream) {
  WorkloadConfig config;
  config.kind = WorkloadKind::kHotspot;
  config.payment_count = 500;
  config.hotspot_shift_interval_s = 3.0;
  HotspotShiftSource source(make_clients(12), config, common::Rng(23));
  source.reset(23);
  const auto a = drain(source);
  source.reset(23);
  expect_same_payments(a, drain(source));
  expect_monotone(a);
}

// ---- TraceSource ----------------------------------------------------------

TEST(TraceSource, ReplaysRowsWithRemappingAndRescaling) {
  TempTrace trace(
      "time,sender,receiver,amount\n"
      "# comment line\n"
      "100.0,alice,bob,10.0\n"
      "100.5,bob,carol,2.5\n"
      "101.0,alice,carol,0.0004\n");
  WorkloadConfig config;
  config.kind = WorkloadKind::kTrace;
  config.trace_file = trace.path();
  config.value_scale = 2.0;
  config.timeout_seconds = 3.0;
  TraceSource source(trace.path(), make_clients(5, 10), config);
  EXPECT_EQ(source.estimated_count(), 3u);
  const auto payments = drain(source);
  ASSERT_EQ(payments.size(), 3u);
  // Times are shifted so the first row arrives at 0.
  EXPECT_DOUBLE_EQ(payments[0].arrival_time, 0.0);
  EXPECT_DOUBLE_EQ(payments[1].arrival_time, 0.5);
  EXPECT_DOUBLE_EQ(payments[0].deadline, 3.0);
  // First-seen remap: alice->10, bob->11, carol->12.
  EXPECT_EQ(payments[0].sender, 10u);
  EXPECT_EQ(payments[0].receiver, 11u);
  EXPECT_EQ(payments[1].sender, 11u);
  EXPECT_EQ(payments[1].receiver, 12u);
  // 10 tokens * value_scale 2.
  EXPECT_EQ(payments[0].value, common::whole_tokens(20));
  // Tiny amounts floor at one token.
  EXPECT_EQ(payments[2].value, common::whole_tokens(1));
  EXPECT_DOUBLE_EQ(source.horizon_hint(), 1.0 + 3.0);
}

TEST(TraceSource, MoreEndpointsThanClientsFoldAndSelfPaysBump) {
  TempTrace trace(
      "0.0,n0,n2,5\n"
      "1.0,n0,n1,5\n");  // n1 folds onto n0's client: self-pay, bumped
  WorkloadConfig config;
  config.kind = WorkloadKind::kTrace;
  config.trace_file = trace.path();
  // Two clients: n0->20, n2->21, then n1->20 again (round-robin reuse).
  TraceSource source(trace.path(), make_clients(2, 20), config);
  const auto payments = drain(source);
  ASSERT_EQ(payments.size(), 2u);
  for (const auto& p : payments) {
    EXPECT_NE(p.sender, p.receiver);
    EXPECT_GE(p.sender, 20u);
    EXPECT_LE(p.receiver, 21u);
  }
}

TEST(TraceSource, NumericModeSkipsUnknownEndpoints) {
  TempTrace trace(
      "0.0,0,1,5\n"
      "1.0,7,1,5\n"     // sender out of range
      "2.0,0,xyz,5\n"   // non-numeric receiver
      "3.0,1,0,5\n");
  WorkloadConfig config;
  config.kind = WorkloadKind::kTrace;
  config.trace_file = trace.path();
  config.trace_remap = false;
  TraceSource source(trace.path(), make_clients(3, 30), config);
  EXPECT_EQ(source.estimated_count(), 2u);
  const auto payments = drain(source);
  ASSERT_EQ(payments.size(), 2u);
  EXPECT_EQ(payments[0].sender, 30u);
  EXPECT_EQ(payments[0].receiver, 31u);
  EXPECT_EQ(payments[1].sender, 31u);
  EXPECT_EQ(payments[1].receiver, 30u);
  EXPECT_EQ(source.rows_skipped(), 2u);
}

TEST(TraceSource, ClipsRowsPastTheHorizon) {
  TempTrace trace(
      "0.0,a,b,5\n"
      "4.0,b,a,5\n"
      "10.0,a,b,5\n"
      "11.0,b,a,5\n");
  WorkloadConfig config;
  config.kind = WorkloadKind::kTrace;
  config.trace_file = trace.path();
  config.horizon_seconds = 5.0;
  TraceSource source(trace.path(), make_clients(4), config);
  EXPECT_EQ(source.estimated_count(), 2u);
  const auto payments = drain(source);
  ASSERT_EQ(payments.size(), 2u);
  EXPECT_DOUBLE_EQ(payments.back().arrival_time, 4.0);
  EXPECT_EQ(source.rows_skipped(), 2u);
}

TEST(TraceSource, ThrowsOnUnsortedRows) {
  TempTrace trace(
      "5.0,a,b,5\n"
      "1.0,b,a,5\n");
  WorkloadConfig config;
  config.kind = WorkloadKind::kTrace;
  config.trace_file = trace.path();
  EXPECT_THROW(TraceSource(trace.path(), make_clients(4), config),
               std::invalid_argument);
}

TEST(TraceSource, ThrowsOnMissingFile) {
  WorkloadConfig config;
  config.kind = WorkloadKind::kTrace;
  config.trace_file = "/nonexistent/trace.csv";
  EXPECT_THROW(TraceSource("/nonexistent/trace.csv", make_clients(4), config),
               std::invalid_argument);
}

TEST(TraceSource, ResetReplaysIdentically) {
  TempTrace trace(
      "0.0,a,b,5\n"
      "0.5,b,c,7\n"
      "1.5,c,a,2\n");
  WorkloadConfig config;
  config.kind = WorkloadKind::kTrace;
  config.trace_file = trace.path();
  TraceSource source(trace.path(), make_clients(3), config);
  const auto a = drain(source);
  source.reset(0);
  expect_same_payments(a, drain(source));
}

TEST(TraceSource, MalformedRowsAreSkippedNotFatal) {
  TempTrace trace(
      "0.0,a,b,5\n"
      "not,a,row\n"
      "1.0,a,b\n"
      "2.0,a,b,-4\n"
      "3.0,a,b,5,extra\n"
      "4.0,b,a,5\n");
  WorkloadConfig config;
  config.kind = WorkloadKind::kTrace;
  config.trace_file = trace.path();
  TraceSource source(trace.path(), make_clients(4), config);
  EXPECT_EQ(source.estimated_count(), 2u);
  EXPECT_EQ(drain(source).size(), 2u);
  EXPECT_EQ(source.rows_skipped(), 4u);
}

// ---- Factory / VectorSource ----------------------------------------------

TEST(MakeTrafficSource, BuildsEveryKindAndValidates) {
  const auto clients = make_clients(10);
  for (const auto kind : {WorkloadKind::kSynthetic, WorkloadKind::kBursty,
                          WorkloadKind::kHotspot}) {
    WorkloadConfig config;
    config.kind = kind;
    config.payment_count = 40;
    const auto source = make_traffic_source(clients, config, common::Rng(2));
    EXPECT_EQ(drain(*source).size(), 40u) << to_string(kind);
  }
  WorkloadConfig bad;
  bad.payment_count = 0;
  EXPECT_THROW((void)make_traffic_source(clients, bad, common::Rng(2)),
               std::invalid_argument);
}

TEST(VectorSource, OwningCtorSortsByArrival) {
  std::vector<Payment> payments(3);
  payments[0].id = 1;
  payments[0].arrival_time = 5.0;
  payments[0].deadline = 8.0;
  payments[1].id = 2;
  payments[1].arrival_time = 1.0;
  payments[1].deadline = 4.0;
  payments[2].id = 3;
  payments[2].arrival_time = 3.0;
  payments[2].deadline = 6.0;
  VectorSource source(payments);
  EXPECT_DOUBLE_EQ(source.horizon_hint(), 8.0);
  const auto sorted = drain(source);
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].id, 2u);
  EXPECT_EQ(sorted[1].id, 3u);
  EXPECT_EQ(sorted[2].id, 1u);
  source.reset(0);
  EXPECT_EQ(drain(source).size(), 3u);
}

TEST(VectorSource, ViewCtorRejectsUnsorted) {
  std::vector<Payment> payments(2);
  payments[0].arrival_time = 5.0;
  payments[1].arrival_time = 1.0;
  EXPECT_THROW(VectorSource{&payments}, std::invalid_argument);
}

// ---- Engine streaming -----------------------------------------------------

/// Sends every payment as one TU along the only path 0 -> 1.
class DirectRouter : public routing::Router {
 public:
  [[nodiscard]] std::string name() const override { return "direct"; }
  void on_payment(routing::Engine& engine,
                  const pcn::Payment& payment) override {
    routing::TransactionUnit tu;
    tu.payment = payment.id;
    tu.value = payment.value;
    tu.deadline = payment.deadline;
    tu.path.nodes = {payment.sender, payment.receiver};
    tu.path.edges = {0};
    tu.hop_amounts = {payment.value};
    engine.send_tu(std::move(tu));
  }
};

TEST(EngineStreaming, SourceRunMatchesVectorRunExactly) {
  WorkloadConfig config;
  config.payment_count = 400;
  config.horizon_seconds = 8.0;
  const std::vector<NodeId> clients{0, 1};

  graph::Graph g(2);
  g.add_edge(0, 1);
  const auto network =
      pcn::Network::with_uniform_funds(std::move(g), common::whole_tokens(4000));

  routing::EngineConfig engine_config;
  const auto run_with = [&](std::unique_ptr<TrafficSource> source) {
    DirectRouter router;
    routing::Engine engine(network, std::move(source), router, engine_config);
    return engine.run();
  };

  common::Rng rng(77);
  auto vector_run = run_with(std::make_unique<VectorSource>(
      generate_payments(clients, config, rng)));
  auto streamed_run = run_with(
      std::make_unique<SyntheticSource>(clients, config, common::Rng(77)));

  EXPECT_EQ(vector_run.payments_generated, streamed_run.payments_generated);
  EXPECT_EQ(vector_run.payments_completed, streamed_run.payments_completed);
  EXPECT_EQ(vector_run.payments_failed, streamed_run.payments_failed);
  EXPECT_EQ(vector_run.value_completed, streamed_run.value_completed);
  EXPECT_DOUBLE_EQ(vector_run.completion_delay_stats.sum(),
                   streamed_run.completion_delay_stats.sum());
  // Lazy pulls keep the arrival pipeline tiny either way.
  EXPECT_LT(streamed_run.peak_payment_buffer, 400u);
  EXPECT_GT(streamed_run.peak_payment_buffer, 0u);
  EXPECT_EQ(vector_run.peak_payment_buffer, streamed_run.peak_payment_buffer);
}

}  // namespace
}  // namespace splicer::pcn
