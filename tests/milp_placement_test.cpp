#include "placement/milp_solver.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "placement/cost_model.h"
#include "placement/exhaustive_solver.h"

namespace splicer::placement {
namespace {

PlacementInstance small_instance(std::uint64_t seed, std::size_t nodes,
                                 std::size_t candidates, double omega) {
  common::Rng rng(seed);
  const auto g = graph::watts_strogatz(nodes, 4, 0.2, rng);
  return build_instance_by_degree(g, candidates, omega);
}

TEST(MilpBuilder, VariableAndConstraintCounts) {
  const auto instance = small_instance(1, 12, 3, 0.1);
  const std::size_t n = 3, m = instance.client_count();
  const auto tight = build_placement_milp(instance, MilpFormulation::kTight);
  // Vars: x(n) + y(mn) + theta(n^2) + phi(n^2 m).
  EXPECT_EQ(tight.variable_count(), n + m * n + n * n + n * n * m);
  // Tight constraints: m assignment + mn linking + n^2 theta + n^2 m phi.
  EXPECT_EQ(tight.constraint_count(), m + m * n + n * n + n * n * m);

  const auto faithful = build_placement_milp(instance, MilpFormulation::kFaithful);
  // Faithful adds 2 upper links per theta and per phi.
  EXPECT_EQ(faithful.constraint_count(),
            tight.constraint_count() + 2 * n * n + 2 * n * n * m);
}

TEST(MilpSolver, MatchesExhaustiveOnTinyInstance) {
  const auto instance = small_instance(2, 12, 3, 0.1);
  const auto exact = solve_exhaustive(instance);
  const auto milp = solve_milp(instance);
  ASSERT_EQ(milp.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(milp.costs.balance, exact.costs.balance, 1e-6);
}

TEST(MilpSolver, FormulationsAgree) {
  const auto instance = small_instance(3, 10, 3, 0.3);
  MilpOptions tight;
  tight.formulation = MilpFormulation::kTight;
  MilpOptions faithful;
  faithful.formulation = MilpFormulation::kFaithful;
  const auto a = solve_milp(instance, tight);
  const auto b = solve_milp(instance, faithful);
  ASSERT_EQ(a.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(b.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(a.costs.balance, b.costs.balance, 1e-6);
}

TEST(MilpSolver, WarmStartDoesNotChangeOptimum) {
  const auto instance = small_instance(4, 12, 3, 0.2);
  MilpOptions with_warm;
  with_warm.warm_start_from_approximation = true;
  MilpOptions without_warm;
  without_warm.warm_start_from_approximation = false;
  const auto a = solve_milp(instance, with_warm);
  const auto b = solve_milp(instance, without_warm);
  ASSERT_EQ(a.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(b.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(a.costs.balance, b.costs.balance, 1e-6);
}

TEST(MilpSolver, PlanIsInternallyConsistent) {
  const auto instance = small_instance(5, 14, 4, 0.1);
  const auto milp = solve_milp(instance);
  ASSERT_EQ(milp.status, lp::SolveStatus::kOptimal);
  EXPECT_GE(milp.plan.hub_count(), 1u);
  for (const auto a : milp.plan.assignment) {
    EXPECT_TRUE(milp.plan.placed[a]);
  }
  // Reported cost equals recomputed cost of the plan.
  EXPECT_NEAR(milp.costs.balance, balance_cost(instance, milp.plan).balance, 1e-9);
}

// Property sweep: MILP == exhaustive across seeds and omegas (the MILP
// linearisation eqs. (6)-(10) is exact).
class MilpEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(MilpEquivalenceTest, MilpEqualsExhaustive) {
  const auto [seed, omega] = GetParam();
  const auto instance = small_instance(seed, 12, 4, omega);
  const auto exact = solve_exhaustive(instance);
  const auto milp = solve_milp(instance);
  ASSERT_EQ(milp.status, lp::SolveStatus::kOptimal)
      << "nodes explored: " << milp.stats.nodes_explored;
  EXPECT_NEAR(milp.costs.balance, exact.costs.balance, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndOmegas, MilpEquivalenceTest,
    ::testing::Combine(::testing::Values(10, 20, 30),
                       ::testing::Values(0.05, 0.2, 0.8)));

}  // namespace
}  // namespace splicer::placement
