// ShardedEngine unit layer: partition-plan builders, per-shard seed
// derivation, coordinator plumbing on a real (small) workload, and the
// router-side per-payment map cleanup contract (on_payment_resolved).
//
// This suite is also the ThreadSanitizer smoke target for the sharded
// engine: it drives real 4-shard runs through the thread pool.

#include "routing/sharded_engine.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "graph/generators.h"
#include "routing/experiment.h"
#include "routing/flash_router.h"
#include "routing/landmark_router.h"
#include "routing/rate_protocol.h"
#include "routing/splicer_router.h"

namespace splicer::routing {
namespace {

ScenarioConfig tiny_config(std::uint64_t seed = 51) {
  ScenarioConfig config;
  config.seed = seed;
  config.topology.nodes = 60;
  config.placement.candidate_count = 6;
  config.workload.payment_count = 150;
  config.workload.horizon_seconds = 6.0;
  return config;
}

pcn::Network tiny_network(std::uint64_t seed = 3) {
  common::Rng rng(seed);
  return pcn::Network::with_uniform_funds(
      graph::watts_strogatz(40, 4, 0.2, rng), common::whole_tokens(100));
}

TEST(ShardPlan, SinglePutsEverythingOnShardZero) {
  const auto network = tiny_network();
  const auto plan = ShardPlan::single(network);
  EXPECT_EQ(plan.shards, 1u);
  plan.validate(network);
  for (const auto s : plan.node_shard) EXPECT_EQ(s, 0u);
  for (const auto s : plan.channel_shard) EXPECT_EQ(s, 0u);
}

TEST(ShardPlan, ContiguousCoversAllShardsAndFollowsLowEndpoint) {
  const auto network = tiny_network();
  const auto plan = ShardPlan::contiguous(network, 4);
  plan.validate(network);
  std::set<std::uint32_t> used(plan.node_shard.begin(), plan.node_shard.end());
  EXPECT_EQ(used.size(), 4u);
  // Node shards are monotone in node id (contiguous ranges).
  for (std::size_t v = 1; v < plan.node_shard.size(); ++v) {
    EXPECT_LE(plan.node_shard[v - 1], plan.node_shard[v]);
  }
  for (std::size_t c = 0; c < network.channel_count(); ++c) {
    const auto& channel = network.channel(static_cast<ChannelId>(c));
    const NodeId low = std::min(channel.node_a(), channel.node_b());
    EXPECT_EQ(plan.channel_shard[c], plan.node_shard[low]);
  }
}

TEST(ShardPlan, HubAffinityKeepsSpokesLocal) {
  const auto scenario = prepare_scenario(tiny_config());
  const auto& star = scenario.multi_star;
  const auto plan = ShardPlan::hub_affinity(star.network, star.hub_of,
                                            star.hubs, 3);
  plan.validate(star.network);
  // Every node sits on its managing hub's shard...
  for (std::size_t v = 0; v < plan.node_shard.size(); ++v) {
    EXPECT_EQ(plan.node_shard[v], plan.node_shard[star.hub_of[v]]);
  }
  // ...and every client spoke channel is local to that shard, so only
  // hub-to-hub trunks can cross shards.
  for (std::size_t c = 0; c < star.network.channel_count(); ++c) {
    const auto& channel = star.network.channel(static_cast<ChannelId>(c));
    const bool a_hub = star.is_hub[channel.node_a()];
    const bool b_hub = star.is_hub[channel.node_b()];
    if (a_hub && b_hub) continue;  // trunk
    const NodeId client = a_hub ? channel.node_b() : channel.node_a();
    EXPECT_EQ(plan.channel_shard[c], plan.node_shard[client]);
  }
}

TEST(ShardPlan, ValidateRejectsMalformedPlans) {
  const auto network = tiny_network();
  auto plan = ShardPlan::contiguous(network, 2);
  plan.node_shard.pop_back();
  EXPECT_THROW(plan.validate(network), std::invalid_argument);
  plan = ShardPlan::contiguous(network, 2);
  plan.channel_shard.front() = 7;
  EXPECT_THROW(plan.validate(network), std::invalid_argument);
  plan = ShardPlan::contiguous(network, 2);
  plan.shards = 0;
  EXPECT_THROW(plan.validate(network), std::invalid_argument);
}

TEST(ShardSeed, OneShardKeepsTheBaseSeedExactly) {
  EXPECT_EQ(ShardedEngine::shard_seed(42, 0, 1), 42u);
  EXPECT_EQ(ShardedEngine::shard_seed(7, 0, 1), 7u);
}

TEST(ShardSeed, MultiShardSeedsAreDistinctAndDeterministic) {
  std::set<std::uint64_t> seeds;
  for (std::uint32_t shard = 0; shard < 8; ++shard) {
    const auto seed = ShardedEngine::shard_seed(42, shard, 8);
    EXPECT_EQ(seed, ShardedEngine::shard_seed(42, shard, 8));
    seeds.insert(seed);
  }
  EXPECT_EQ(seeds.size(), 8u);
  EXPECT_NE(ShardedEngine::shard_seed(42, 0, 8),
            ShardedEngine::shard_seed(43, 0, 8));
}

TEST(ShardedEngine, FourShardSplicerRunExercisesTheCoordinator) {
  // A real multi-hub workload on 4 shards: payments resolve, funds conserve
  // per shard (finish_run() throws otherwise), TUs cross shard boundaries,
  // and the merged metrics stay internally consistent.
  const auto scenario = prepare_scenario(tiny_config(52));
  ShardedEngineConfig sharded;
  sharded.shards = 4;
  const auto m =
      run_scheme_sharded(scenario, Scheme::kSplicer, SchemeConfig{}, sharded);
  EXPECT_EQ(m.payments_generated, 150u);
  EXPECT_EQ(m.payments_completed + m.payments_failed, 150u);
  EXPECT_GT(m.payments_completed, 0u);
  EXPECT_GT(m.cross_shard_messages, 0u);
  EXPECT_GT(m.shard_barriers, 0u);
  EXPECT_EQ(m.tus_delivered + m.tus_failed, m.tus_sent);
}

TEST(ShardedEngine, ExplicitThreadCountsAgree) {
  // Worker count is an execution detail, never a semantic input: 1-thread
  // and 4-thread executions of the same 4-shard run must agree exactly.
  const auto scenario = prepare_scenario(tiny_config(53));
  EngineMetrics results[2];
  std::size_t i = 0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ShardedEngineConfig sharded;
    sharded.shards = 4;
    sharded.threads = threads;
    results[i++] =
        run_scheme_sharded(scenario, Scheme::kSpider, SchemeConfig{}, sharded);
  }
  EXPECT_EQ(results[0].payments_completed, results[1].payments_completed);
  EXPECT_EQ(results[0].tus_sent, results[1].tus_sent);
  EXPECT_EQ(results[0].scheduler_events, results[1].scheduler_events);
  EXPECT_EQ(results[0].messages.total(), results[1].messages.total());
  EXPECT_EQ(results[0].simulated_seconds, results[1].simulated_seconds);
}

TEST(ShardedEngine, BarrierPeriodDefaultsToSettlementEpoch) {
  // With batched settlement on, the barrier grid coincides with the
  // settlement grid (both quantisations in lock-step); the run stays sane.
  const auto scenario = prepare_scenario(tiny_config(54));
  SchemeConfig config;
  config.engine.settlement_epoch_s = 0.005;
  ShardedEngineConfig sharded;
  sharded.shards = 2;
  const auto m = run_scheme_sharded(scenario, Scheme::kSplicer, config, sharded);
  EXPECT_EQ(m.payments_completed + m.payments_failed, 150u);
  EXPECT_GT(m.settlement_flushes, 0u);
}

TEST(ShardedEngine, RouterMapsAreEmptyAfterEveryShardRun) {
  // Satellite contract: on_payment_resolved fires for every payment at
  // quiescence, so no router-side per-payment map can outlive its payment —
  // on any shard, sequential or sharded, with or without retention.
  const auto scenario = prepare_scenario(tiny_config(55));
  for (const std::uint32_t shards : {1u, 4u}) {
    for (const bool retain : {true, false}) {
      SchemeConfig config;
      config.engine.retain_resolved = retain;
      ShardedEngineConfig sharded_config;
      sharded_config.shards = shards;

      {
        const ShardPlan plan = ShardPlan::hub_affinity(
            scenario.multi_star.network, scenario.multi_star.hub_of,
            scenario.multi_star.hubs, shards);
        auto engine_config = config.engine;
        engine_config.queues_enabled = true;
        ShardedEngine engine(
            scenario.multi_star.network, scenario.make_source(),
            [&](std::uint32_t) -> std::unique_ptr<Router> {
              SplicerRouter::Config rc;
              rc.protocol = config.protocol;
              return std::make_unique<SplicerRouter>(
                  scenario.multi_star.hub_of, scenario.multi_star.hubs, rc);
            },
            plan, engine_config, sharded_config);
        (void)engine.run();
        for (std::uint32_t s = 0; s < shards; ++s) {
          const auto& router =
              dynamic_cast<const RateRouterBase&>(engine.router(s));
          EXPECT_EQ(router.tracked_payments(), 0u)
              << "Splicer shard " << s << " retain=" << retain;
        }
      }
      {
        const ShardPlan plan = ShardPlan::contiguous(scenario.raw, shards);
        auto engine_config = config.engine;
        engine_config.queues_enabled = false;
        ShardedEngine engine(
            scenario.raw, scenario.make_source(),
            [](std::uint32_t) -> std::unique_ptr<Router> {
              return std::make_unique<FlashRouter>();
            },
            plan, engine_config, sharded_config);
        (void)engine.run();
        for (std::uint32_t s = 0; s < shards; ++s) {
          const auto& router =
              dynamic_cast<const FlashRouter&>(engine.router(s));
          EXPECT_EQ(router.tracked_payments(), 0u)
              << "Flash shard " << s << " retain=" << retain;
        }
      }
      {
        const ShardPlan plan = ShardPlan::contiguous(scenario.raw, shards);
        auto engine_config = config.engine;
        engine_config.queues_enabled = false;
        ShardedEngine engine(
            scenario.raw, scenario.make_source(),
            [](std::uint32_t) -> std::unique_ptr<Router> {
              return std::make_unique<LandmarkRouter>();
            },
            plan, engine_config, sharded_config);
        (void)engine.run();
        for (std::uint32_t s = 0; s < shards; ++s) {
          const auto& router =
              dynamic_cast<const LandmarkRouter&>(engine.router(s));
          EXPECT_EQ(router.tracked_payments(), 0u)
              << "Landmark shard " << s << " retain=" << retain;
        }
      }
    }
  }
}

}  // namespace
}  // namespace splicer::routing
