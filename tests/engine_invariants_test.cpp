// Queue-accounting and funds-conservation invariants under randomized
// traffic. The engine is run with EngineConfig::validate_queues, which
// re-derives every touched queue's value from its entries after each
// enqueue/drain/mark and throws on any drift — the regression guard for
// the queued_value leaks fixed alongside batched settlement.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/shortest_path.h"
#include "routing/engine.h"
#include "routing/experiment.h"

namespace splicer::routing {
namespace {

using common::whole_tokens;

/// Sends every payment over its shortest path as a single TU; enough to
/// exercise locks, queues, marking and refunds without router policy noise.
class PathRouter : public Router {
 public:
  [[nodiscard]] std::string name() const override { return "path"; }

  void on_payment(Engine& engine, const pcn::Payment& payment) override {
    const auto path = graph::shortest_path(engine.network().topology(),
                                           payment.sender, payment.receiver);
    if (!path || path->edges.empty()) {
      engine.fail_payment(payment.id, FailReason::kNoPath);
      return;
    }
    TransactionUnit tu;
    tu.payment = payment.id;
    tu.value = payment.value;
    tu.path = *path;
    tu.hop_amounts.assign(tu.path.edges.size(), payment.value);
    tu.deadline = payment.deadline;
    engine.send_tu(std::move(tu));
  }
};

std::vector<pcn::Payment> random_payments(std::size_t count, std::size_t nodes,
                                          std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<pcn::Payment> payments;
  const auto last = static_cast<std::int64_t>(nodes) - 1;
  for (std::size_t i = 0; i < count; ++i) {
    pcn::Payment p;
    p.id = i + 1;
    p.sender = static_cast<pcn::NodeId>(rng.uniform_int(0, last));
    do {
      p.receiver = static_cast<pcn::NodeId>(rng.uniform_int(0, last));
    } while (p.receiver == p.sender);
    p.value = whole_tokens(1 + static_cast<Amount>(rng.uniform_int(0, 40)));
    p.arrival_time = rng.uniform(0.05, 6.0);
    p.deadline = p.arrival_time + 3.0;
    payments.push_back(p);
  }
  return payments;
}

/// Scarce funds + low processing rate: queues fill, marks fire, refunds and
/// settles interleave — the adversarial regime for queue accounting.
EngineMetrics run_randomized(SchedulingPolicy policy, double epoch_s,
                             std::uint64_t seed) {
  common::Rng rng(seed);
  auto g = graph::watts_strogatz(40, 4, 0.2, rng);
  auto net = pcn::Network::with_uniform_funds(std::move(g), whole_tokens(60));

  PathRouter router;
  EngineConfig config;
  config.policy = policy;
  config.queues_enabled = true;
  config.queue_delay_threshold_s = 0.3;
  config.queue_capacity = whole_tokens(120);
  config.process_rate_tokens_per_s = 400.0;
  config.settlement_epoch_s = epoch_s;
  config.validate_queues = true;
  config.seed = seed;

  Engine engine(std::move(net), random_payments(250, 40, seed), router, config);
  // run() itself asserts funds conservation; validate_queues asserts the
  // queued_value invariant after every queue mutation.
  return engine.run();
}

class QueueInvariants
    : public ::testing::TestWithParam<std::tuple<SchedulingPolicy, double>> {};

TEST_P(QueueInvariants, RandomizedTrafficKeepsQueueAccountingExact) {
  const auto [policy, epoch_s] = GetParam();
  const auto m = run_randomized(policy, epoch_s, 7);
  // The workload must actually stress the queues for the check to mean
  // anything: TUs got sent and some were marked or failed.
  EXPECT_GT(m.tus_sent, 100u);
  EXPECT_GT(m.payments_completed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesBothModes, QueueInvariants,
    ::testing::Combine(::testing::Values(SchedulingPolicy::kFifo,
                                         SchedulingPolicy::kLifo,
                                         SchedulingPolicy::kSpf,
                                         SchedulingPolicy::kEdf),
                       ::testing::Values(0.0, 0.02)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) +
             (std::get<1>(info.param) > 0 ? "_batched" : "_perhop");
    });

TEST(QueueInvariants, SeedsSweepBothModes) {
  for (const std::uint64_t seed : {11u, 23u, 51u}) {
    const auto per_hop = run_randomized(SchedulingPolicy::kLifo, 0.0, seed);
    const auto batched = run_randomized(SchedulingPolicy::kLifo, 0.01, seed);
    // Same workload; batching coalesces events but must keep the
    // simulation sound: everything generated is accounted for.
    EXPECT_EQ(per_hop.payments_generated, batched.payments_generated);
    EXPECT_LT(batched.scheduler_events, per_hop.scheduler_events);
  }
}

TEST(QueueInvariants, BatchedModeMatchesThroughputClosely) {
  const auto per_hop = run_randomized(SchedulingPolicy::kLifo, 0.0, 3);
  const auto batched = run_randomized(SchedulingPolicy::kLifo, 0.005, 3);
  // A 5 ms epoch only defers fund availability by sub-hop-delay amounts;
  // aggregate outcomes stay in the same regime.
  EXPECT_NEAR(per_hop.tsr(), batched.tsr(), 0.1);
}

TEST(QueueInvariants, FullSchemeStackHoldsUnderBatching) {
  // End-to-end: the real experiment harness (placement + rate protocol +
  // queues) with validation on, per-hop and batched.
  ScenarioConfig sc;
  sc.seed = 5;
  sc.topology.nodes = 50;
  sc.placement.candidate_count = 6;
  sc.workload.payment_count = 150;
  sc.workload.horizon_seconds = 6.0;
  const auto scenario = prepare_scenario(sc);
  for (const double epoch_s : {0.0, 0.02}) {
    for (const auto scheme : {Scheme::kSplicer, Scheme::kSpider}) {
      SchemeConfig config;
      config.engine.settlement_epoch_s = epoch_s;
      config.engine.validate_queues = true;
      const auto m = run_scheme(scenario, scheme, config);
      EXPECT_GT(m.payments_generated, 0u);
    }
  }
}

}  // namespace
}  // namespace splicer::routing
