#include "crypto/secure_channel.h"

#include <gtest/gtest.h>

namespace splicer::crypto {
namespace {

TEST(SecureChannel, SealOpenRoundTrip) {
  SecureChannel sender(0xfeedface);
  SecureChannel receiver(0xfeedface);
  const Bytes payload{10, 20, 30};
  const auto sealed = sender.seal(payload);
  const auto opened = receiver.open(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
}

TEST(SecureChannel, EstablishSharesKey) {
  common::Rng rng(1);
  SecureChannel channel = SecureChannel::establish(rng);
  SecureChannel peer(channel.key());
  const auto sealed = channel.seal({1, 2, 3});
  EXPECT_TRUE(peer.open(sealed).has_value());
}

TEST(SecureChannel, WrongKeyRejected) {
  SecureChannel sender(111);
  SecureChannel receiver(222);
  const auto sealed = sender.seal({5});
  EXPECT_FALSE(receiver.open(sealed).has_value());
}

TEST(SecureChannel, TamperRejected) {
  SecureChannel sender(7);
  SecureChannel receiver(7);
  auto sealed = sender.seal({1, 2, 3, 4});
  sealed.body[2] ^= 0x80;
  EXPECT_FALSE(receiver.open(sealed).has_value());
}

TEST(SecureChannel, ReplayRejected) {
  SecureChannel sender(9);
  SecureChannel receiver(9);
  const auto sealed = sender.seal({1});
  ASSERT_TRUE(receiver.open(sealed).has_value());
  EXPECT_FALSE(receiver.open(sealed).has_value());  // same sequence again
}

TEST(SecureChannel, OutOfOrderOldMessageRejected) {
  SecureChannel sender(9);
  SecureChannel receiver(9);
  const auto first = sender.seal({1});
  const auto second = sender.seal({2});
  ASSERT_TRUE(receiver.open(second).has_value());
  EXPECT_FALSE(receiver.open(first).has_value());  // stale sequence
}

TEST(SecureChannel, SequencesIncrement) {
  SecureChannel sender(1);
  EXPECT_EQ(sender.seal({}).sequence, 1u);
  EXPECT_EQ(sender.seal({}).sequence, 2u);
}

TEST(SecureChannel, CiphertextHidesPlaintext) {
  SecureChannel sender(31337);
  const Bytes payload{'s', 'e', 'c', 'r', 'e', 't'};
  EXPECT_NE(sender.seal(payload).body, payload);
}

}  // namespace
}  // namespace splicer::crypto
