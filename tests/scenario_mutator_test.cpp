// Hostile-world scenario mutators: determinism contract (construct ==
// reset, equal seeds => equal streams), time ordering with stable
// equal-timestamp sequence, follow-up pairing, HostileConfig validation,
// the FailReason additions, and the engine-level parity gates (rate-0 ==
// benign run; 1-shard sharded == sequential under active mutations).

#include "pcn/scenario_mutator.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "routing/experiment.h"
#include "routing/router.h"
#include "routing/sharded_engine.h"

namespace splicer::pcn {
namespace {

std::vector<MutationEvent> drain(ScenarioMutator& mutator) {
  std::vector<MutationEvent> events;
  while (auto e = mutator.next()) events.push_back(*e);
  return events;
}

bool same_event(const MutationEvent& a, const MutationEvent& b) {
  return a.time == b.time && a.kind == b.kind && a.node == b.node &&
         a.channel == b.channel && a.policy.fee_base == b.policy.fee_base &&
         a.policy.fee_proportional == b.policy.fee_proportional &&
         a.policy.min_htlc == b.policy.min_htlc &&
         a.policy.timelock == b.policy.timelock;
}

TEST(ScenarioMutator, ResetReproducesTheConstructedStream) {
  NodeFaultMutator mutator(64, 2.0, 0.4, 30.0, 77);
  const auto first = drain(mutator);
  ASSERT_FALSE(first.empty());
  mutator.reset(77);
  const auto second = drain(mutator);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(same_event(first[i], second[i])) << "event " << i;
  }
}

TEST(ScenarioMutator, DifferentSeedsDiverge) {
  ChannelChurnMutator a(128, 1.5, 0.3, 30.0, 1);
  ChannelChurnMutator b(128, 1.5, 0.3, 30.0, 2);
  const auto ea = drain(a);
  const auto eb = drain(b);
  bool differ = ea.size() != eb.size();
  for (std::size_t i = 0; !differ && i < ea.size(); ++i) {
    differ = !same_event(ea[i], eb[i]);
  }
  EXPECT_TRUE(differ);
}

TEST(ScenarioMutator, TimesAreNondecreasingAndWithinHorizon) {
  const double horizon = 20.0;
  ChannelChurnMutator mutator(200, 3.0, 0.5, horizon, 9);
  const auto events = drain(mutator);
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].time, events[i - 1].time) << "event " << i;
  }
  // Primaries stop at the horizon; follow-ups (reopen) may trail past it.
  for (const auto& e : events) {
    if (e.kind == MutationEvent::Kind::kChannelClose) {
      EXPECT_LT(e.time, horizon);
    }
  }
}

TEST(ScenarioMutator, EveryPrimaryPairsWithItsFollowup) {
  NodeFaultMutator mutator(32, 2.0, 0.4, 15.0, 5);
  std::vector<int> depth(32, 0);
  std::size_t downs = 0, ups = 0;
  while (auto e = mutator.next()) {
    if (e->kind == MutationEvent::Kind::kNodeDown) {
      ++downs;
      ++depth[e->node];
    } else {
      ASSERT_EQ(e->kind, MutationEvent::Kind::kNodeUp);
      ++ups;
      --depth[e->node];
      // A recovery can only follow an earlier failure of the same node.
      EXPECT_GE(depth[e->node], 0) << "node " << e->node;
    }
  }
  EXPECT_GT(downs, 0u);
  EXPECT_EQ(downs, ups);  // every outage eventually heals
}

TEST(ScenarioMutator, MakeMutatorsHonoursZeroRates) {
  HostileConfig config;  // all rates zero
  EXPECT_FALSE(config.any_mutation_active());
  EXPECT_TRUE(make_mutators(config, 50, 100, 10.0).empty());

  config.churn_rate = 1.0;
  config.timelock_rate = 0.5;
  const auto mutators = make_mutators(config, 50, 100, 10.0);
  ASSERT_EQ(mutators.size(), 2u);  // fixed order: churn before timelock
  EXPECT_EQ(mutators[0]->name(), "channel-churn");
  EXPECT_EQ(mutators[1]->name(), "timelock");
}

TEST(ScenarioMutator, FeePolicyPayloadsRespectCaps) {
  HostileConfig config;
  config.fee_policy_rate = 4.0;
  config.fee_base_cap = 500;
  config.fee_proportional_cap = 0.02;
  config.min_htlc_cap = 50;
  const auto mutators = make_mutators(config, 50, 120, 20.0);
  ASSERT_EQ(mutators.size(), 1u);
  std::size_t seen = 0;
  while (auto e = mutators[0]->next()) {
    ASSERT_EQ(e->kind, MutationEvent::Kind::kFeePolicy);
    EXPECT_LT(e->channel, 120u);
    EXPECT_GE(e->policy.fee_base, 0);
    EXPECT_LE(e->policy.fee_base, 500);
    EXPECT_GE(e->policy.fee_proportional, 0.0);
    EXPECT_LE(e->policy.fee_proportional, 0.02);
    EXPECT_GE(e->policy.min_htlc, 0);
    EXPECT_LE(e->policy.min_htlc, 50);
    ++seen;
  }
  EXPECT_GT(seen, 0u);
}

TEST(HostileConfig, ValidateAcceptsDefaultsAndActivePacks) {
  HostileConfig config;
  EXPECT_NO_THROW(config.validate());
  config.fault_rate = 2.0;
  config.churn_rate = 1.0;
  config.fee_policy_rate = 0.5;
  config.timelock_rate = 0.25;
  config.timelock_budget = 12;
  EXPECT_NO_THROW(config.validate());
}

TEST(HostileConfig, ValidateRejectsInconsistentKnobs) {
  const auto rejects = [](auto&& tweak) {
    HostileConfig config;
    tweak(config);
    EXPECT_THROW(config.validate(), std::invalid_argument);
  };
  rejects([](HostileConfig& c) { c.fault_rate = -1.0; });
  rejects([](HostileConfig& c) { c.churn_rate = -0.5; });
  rejects([](HostileConfig& c) { c.fee_policy_rate = -2.0; });
  rejects([](HostileConfig& c) { c.timelock_rate = -0.1; });
  rejects([](HostileConfig& c) {
    c.fault_rate = 1.0;
    c.mean_down_s = 0.0;
  });
  rejects([](HostileConfig& c) {
    c.churn_rate = 1.0;
    c.mean_closed_s = -3.0;
  });
  rejects([](HostileConfig& c) { c.fee_base_cap = -1; });
  rejects([](HostileConfig& c) { c.fee_proportional_cap = 1.5; });
  rejects([](HostileConfig& c) {
    c.timelock_rate = 1.0;
    c.timelock_max = 0;
  });
  rejects([](HostileConfig& c) { c.timelock_budget = 0; });
}

TEST(FailReason, HostileReasonsRoundTripThroughToString) {
  using routing::FailReason;
  static_assert(routing::kFailReasonCount == 8,
                "hostile-world reasons must be counted");
  EXPECT_STREQ(routing::to_string(FailReason::kNodeOffline), "node-offline");
  EXPECT_STREQ(routing::to_string(FailReason::kChannelClosed),
               "channel-closed");
  // Every enumerator renders a real label (the "?" fallthrough is dead).
  for (std::size_t r = 0; r < routing::kFailReasonCount; ++r) {
    EXPECT_STRNE(routing::to_string(static_cast<FailReason>(r)), "?");
  }
}

// ---- engine-level parity gates ---------------------------------------------

routing::ScenarioConfig parity_config() {
  routing::ScenarioConfig config;
  config.seed = 91;
  config.topology.nodes = 60;
  config.placement.candidate_count = 6;
  config.workload.payment_count = 150;
  config.workload.horizon_seconds = 6.0;
  return config;
}

void expect_identical(const routing::EngineMetrics& a,
                      const routing::EngineMetrics& b, const char* what) {
  EXPECT_EQ(a.payments_completed, b.payments_completed) << what;
  EXPECT_EQ(a.payments_failed, b.payments_failed) << what;
  EXPECT_EQ(a.value_completed, b.value_completed) << what;
  EXPECT_EQ(a.tus_sent, b.tus_sent) << what;
  EXPECT_EQ(a.tus_delivered, b.tus_delivered) << what;
  EXPECT_EQ(a.tus_failed, b.tus_failed) << what;
  EXPECT_EQ(a.tu_fail_reasons, b.tu_fail_reasons) << what;
  EXPECT_EQ(a.payment_fail_reasons, b.payment_fail_reasons) << what;
  EXPECT_EQ(a.mutation_events, b.mutation_events) << what;
  EXPECT_EQ(a.messages.total(), b.messages.total()) << what;
  EXPECT_EQ(a.simulated_seconds, b.simulated_seconds) << what;
}

TEST(ScenarioMutator, RateZeroIsByteIdenticalToBenign) {
  // The whole pack disabled must not perturb a single metric — the
  // engine-level version of the CI fig7 byte-identity gate.
  const auto scenario = routing::prepare_scenario(parity_config());
  routing::SchemeConfig benign;
  routing::SchemeConfig hostile_off;
  hostile_off.engine.hostile.timelock_budget = 1000;  // bounded but slack
  for (const auto scheme : routing::comparison_schemes()) {
    const auto a = routing::run_scheme(scenario, scheme, benign);
    const auto b = routing::run_scheme(scenario, scheme, hostile_off);
    expect_identical(a, b, routing::to_string(scheme));
    EXPECT_EQ(b.mutation_events, 0u);
  }
}

TEST(ScenarioMutator, OneShardShardedMatchesSequentialUnderMutations) {
  // Mutation streams derive from HostileConfig::seed, not the engine seed,
  // so a 1-shard sharded run must replay the exact sequential simulation.
  const auto scenario = routing::prepare_scenario(parity_config());
  routing::SchemeConfig config;
  config.engine.hostile.fault_rate = 1.5;
  config.engine.hostile.churn_rate = 1.0;
  config.engine.hostile.fee_policy_rate = 0.5;
  config.engine.hostile.timelock_rate = 0.5;
  config.engine.hostile.timelock_budget = 16;
  for (const auto scheme :
       {routing::Scheme::kSplicer, routing::Scheme::kFlash,
        routing::Scheme::kShortestPath}) {
    const auto sequential = routing::run_scheme(scenario, scheme, config);
    EXPECT_GT(sequential.mutation_events, 0u) << routing::to_string(scheme);
    routing::ShardedEngineConfig sharded;
    sharded.shards = 1;
    const auto one_shard =
        routing::run_scheme_sharded(scenario, scheme, config, sharded);
    expect_identical(sequential, one_shard, routing::to_string(scheme));
  }
}

}  // namespace
}  // namespace splicer::pcn
