#include "routing/engine.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace splicer::routing {
namespace {

using common::whole_tokens;

/// Scripted router for poking the engine directly.
class ScriptedRouter : public Router {
 public:
  using Script = std::function<void(Engine&, const pcn::Payment&)>;
  explicit ScriptedRouter(Script script) : script_(std::move(script)) {}

  [[nodiscard]] std::string name() const override { return "scripted"; }
  void on_payment(Engine& engine, const pcn::Payment& payment) override {
    script_(engine, payment);
  }
  void on_tu_delivered(Engine&, const TransactionUnit& tu) override {
    delivered.push_back(tu);
  }
  void on_tu_failed(Engine&, const TransactionUnit& tu, FailReason reason) override {
    failed.emplace_back(tu, reason);
  }

  std::vector<TransactionUnit> delivered;
  std::vector<std::pair<TransactionUnit, FailReason>> failed;

 private:
  Script script_;
};

pcn::Network line_network(Amount per_side = whole_tokens(10)) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  return pcn::Network::with_uniform_funds(std::move(g), per_side);
}

pcn::Payment make_payment(PaymentId id, NodeId s, NodeId r, Amount v,
                          double arrival = 0.1) {
  pcn::Payment p;
  p.id = id;
  p.sender = s;
  p.receiver = r;
  p.value = v;
  p.arrival_time = arrival;
  p.deadline = arrival + 3.0;
  return p;
}

TransactionUnit two_hop_tu(const pcn::Network& net, PaymentId payment, Amount v) {
  TransactionUnit tu;
  tu.payment = payment;
  tu.value = v;
  tu.path.nodes = {0, 1, 2};
  tu.path.edges = {net.topology().find_edge(0, 1), net.topology().find_edge(1, 2)};
  tu.hop_amounts = {v, v};
  tu.deadline = 10.0;
  return tu;
}

TEST(Engine, SuccessfulPaymentSettlesFunds) {
  auto net = line_network();
  ScriptedRouter router([&](Engine& engine, const pcn::Payment& p) {
    engine.send_tu(two_hop_tu(engine.network(), p.id, p.value));
  });
  Engine engine(net, {make_payment(1, 0, 2, whole_tokens(4))}, router);
  const auto m = engine.run();
  EXPECT_EQ(m.payments_completed, 1u);
  EXPECT_EQ(m.tus_delivered, 1u);
  EXPECT_DOUBLE_EQ(m.tsr(), 1.0);
  // Funds moved along the path: 0's side shrank, 2's side grew.
  EXPECT_EQ(engine.network().available_from(0, 0), whole_tokens(6));
  EXPECT_EQ(engine.network().available_from(1, 2), whole_tokens(14));
}

TEST(Engine, ConservationAcrossManyPayments) {
  auto net = line_network();
  const Amount before = net.total_funds();
  ScriptedRouter router([&](Engine& engine, const pcn::Payment& p) {
    engine.send_tu(two_hop_tu(engine.network(), p.id, p.value));
  });
  std::vector<pcn::Payment> payments;
  for (int i = 0; i < 30; ++i) {
    payments.push_back(make_payment(i + 1, i % 2 == 0 ? 0 : 2,
                                    i % 2 == 0 ? 2 : 0, whole_tokens(2),
                                    0.1 + 0.05 * i));
    if (i % 2 == 1) {
      payments.back().value = whole_tokens(2);
      std::swap(payments.back().sender, payments.back().receiver);
    }
  }
  // Fix paths per direction.
  ScriptedRouter bidirouter([&](Engine& engine, const pcn::Payment& p) {
    TransactionUnit tu;
    tu.payment = p.id;
    tu.value = p.value;
    if (p.sender == 0) {
      tu.path.nodes = {0, 1, 2};
    } else {
      tu.path.nodes = {2, 1, 0};
    }
    const auto& g = engine.network().topology();
    tu.path.edges = {g.find_edge(tu.path.nodes[0], tu.path.nodes[1]),
                     g.find_edge(tu.path.nodes[1], tu.path.nodes[2])};
    tu.hop_amounts = {p.value, p.value};
    tu.deadline = p.deadline;
    engine.send_tu(std::move(tu));
  });
  Engine engine(std::move(net), payments, bidirouter);
  const auto m = engine.run();  // run() asserts conservation internally
  EXPECT_GT(m.payments_completed, 0u);
  (void)before;
}

TEST(Engine, AtomicFailureRefundsUpstreamLocks) {
  auto net = line_network(whole_tokens(10));
  // Drain channel 1->2 so the second hop fails.
  auto& ch = net.channel(net.topology().find_edge(1, 2));
  ASSERT_TRUE(ch.lock(ch.direction_from(1), whole_tokens(10)));

  ScriptedRouter router([&](Engine& engine, const pcn::Payment& p) {
    engine.send_tu(two_hop_tu(engine.network(), p.id, p.value));
  });
  EngineConfig config;
  config.queues_enabled = false;
  Engine engine(std::move(net), {make_payment(1, 0, 2, whole_tokens(5))}, router,
                config);
  const auto m = engine.run();
  EXPECT_EQ(m.payments_completed, 0u);
  EXPECT_EQ(m.tus_failed, 1u);
  ASSERT_EQ(router.failed.size(), 1u);
  EXPECT_EQ(router.failed[0].second, FailReason::kInsufficientFunds);
  // First-hop lock was refunded.
  EXPECT_EQ(engine.network().available_from(0, 0), whole_tokens(10));
}

TEST(Engine, QueueModeHoldsThenDelivers) {
  auto net = line_network(whole_tokens(10));
  // Temporarily drain 1->2; refund shortly after so the queued TU drains.
  auto& ch = net.channel(net.topology().find_edge(1, 2));
  const auto d = ch.direction_from(1);
  ASSERT_TRUE(ch.lock(d, whole_tokens(10)));

  ScriptedRouter router([&](Engine& engine, const pcn::Payment& p) {
    engine.send_tu(two_hop_tu(engine.network(), p.id, p.value));
    engine.scheduler().after(0.1, [&engine] {
      auto& blocked =
          engine.network().channel(engine.network().topology().find_edge(1, 2));
      blocked.refund(blocked.direction_from(1), whole_tokens(10));
      // Nudge the queue (normally settles/refunds inside the engine do it).
    });
  });
  EngineConfig config;
  config.queues_enabled = true;
  config.queue_delay_threshold_s = 5.0;  // do not mark in this test
  Engine engine(std::move(net), {make_payment(1, 0, 2, whole_tokens(5))}, router,
                config);
  const auto m = engine.run();
  // The refund done by the router does not invoke the engine's drain hook,
  // so delivery relies on the mark/requeue machinery... the engine drains
  // on its own settle/refund only. Accept either outcome but require no
  // funds leakage (conservation is asserted in run()).
  EXPECT_LE(m.payments_completed, 1u);
}

TEST(Engine, MarkingFailsQueuedTuAfterThreshold) {
  auto net = line_network(whole_tokens(10));
  auto& ch = net.channel(net.topology().find_edge(1, 2));
  ASSERT_TRUE(ch.lock(ch.direction_from(1), whole_tokens(10)));  // block forever

  ScriptedRouter router([&](Engine& engine, const pcn::Payment& p) {
    engine.send_tu(two_hop_tu(engine.network(), p.id, p.value));
  });
  EngineConfig config;
  config.queues_enabled = true;
  config.queue_delay_threshold_s = 0.4;
  Engine engine(std::move(net), {make_payment(1, 0, 2, whole_tokens(5))}, router,
                config);
  const auto m = engine.run();
  EXPECT_EQ(m.tus_marked, 1u);
  ASSERT_EQ(router.failed.size(), 1u);
  EXPECT_EQ(router.failed[0].second, FailReason::kMarkedCongested);
  // Upstream lock refunded after marking.
  EXPECT_EQ(engine.network().available_from(0, 0), whole_tokens(10));
}

TEST(Engine, QueueOverflowRejectsImmediately) {
  auto net = line_network(whole_tokens(10));
  auto& ch = net.channel(net.topology().find_edge(1, 2));
  ASSERT_TRUE(ch.lock(ch.direction_from(1), whole_tokens(10)));

  ScriptedRouter router([&](Engine& engine, const pcn::Payment& p) {
    engine.send_tu(two_hop_tu(engine.network(), p.id, p.value));
  });
  EngineConfig config;
  config.queues_enabled = true;
  config.queue_capacity = whole_tokens(3);  // below the TU value
  Engine engine(std::move(net), {make_payment(1, 0, 2, whole_tokens(5))}, router,
                config);
  (void)engine.run();
  ASSERT_EQ(router.failed.size(), 1u);
  EXPECT_EQ(router.failed[0].second, FailReason::kQueueOverflow);
}

TEST(Engine, DeadlineFailsIncompletePayment) {
  auto net = line_network();
  ScriptedRouter router([](Engine&, const pcn::Payment&) { /* never send */ });
  Engine engine(std::move(net), {make_payment(1, 0, 2, whole_tokens(5))}, router);
  const auto m = engine.run();
  EXPECT_EQ(m.payments_failed, 1u);
  EXPECT_EQ(m.payment_fail_reasons[static_cast<std::size_t>(FailReason::kTimeout)],
            1u);
}

TEST(Engine, PartialDeliveryDoesNotComplete) {
  auto net = line_network();
  ScriptedRouter router([&](Engine& engine, const pcn::Payment& p) {
    engine.send_tu(two_hop_tu(engine.network(), p.id, p.value / 2));  // half only
  });
  Engine engine(std::move(net), {make_payment(1, 0, 2, whole_tokens(4))}, router);
  const auto m = engine.run();
  EXPECT_EQ(m.tus_delivered, 1u);
  EXPECT_EQ(m.payments_completed, 0u);
  EXPECT_EQ(m.payments_failed, 1u);
}

TEST(Engine, FeesAccrueToIntermediary) {
  auto net = line_network();
  // Sender pays 5 + 1 fee on the first hop; relay keeps the margin.
  ScriptedRouter router([&](Engine& engine, const pcn::Payment& p) {
    TransactionUnit tu = two_hop_tu(engine.network(), p.id, p.value);
    tu.hop_amounts = {p.value + whole_tokens(1), p.value};
    engine.send_tu(std::move(tu));
  });
  Engine engine(net, {make_payment(1, 0, 2, whole_tokens(5))}, router);
  const auto m = engine.run();
  EXPECT_EQ(m.payments_completed, 1u);
  // Node 1 received 6 on channel (0,1) and paid 5 on (1,2): +1 net.
  const auto& ch01 = engine.network().channel(engine.network().topology().find_edge(0, 1));
  EXPECT_EQ(ch01.available(ch01.direction_from(1)), whole_tokens(16));
}

TEST(Engine, SendTuValidation) {
  auto net = line_network();
  ScriptedRouter router([&](Engine& engine, const pcn::Payment& p) {
    TransactionUnit bad;
    bad.payment = p.id;
    bad.value = whole_tokens(1);
    EXPECT_THROW((void)engine.send_tu(std::move(bad)), std::invalid_argument);
  });
  Engine engine(std::move(net), {make_payment(1, 0, 2, whole_tokens(1))}, router);
  (void)engine.run();
}

TEST(Engine, BatchedSettlementReachesSameFinalBalances) {
  for (const double epoch_s : {0.0, 0.01, 0.25}) {
    auto net = line_network();
    ScriptedRouter router([&](Engine& engine, const pcn::Payment& p) {
      engine.send_tu(two_hop_tu(engine.network(), p.id, p.value));
    });
    EngineConfig config;
    config.settlement_epoch_s = epoch_s;
    Engine engine(net, {make_payment(1, 0, 2, whole_tokens(4))}, router, config);
    const auto m = engine.run();
    EXPECT_EQ(m.payments_completed, 1u) << "epoch " << epoch_s;
    // Same funds movement whether settled per hop or per epoch.
    EXPECT_EQ(engine.network().available_from(0, 0), whole_tokens(6));
    EXPECT_EQ(engine.network().available_from(1, 2), whole_tokens(14));
    if (epoch_s > 0) {
      EXPECT_GT(m.settlement_flushes, 0u);
      EXPECT_EQ(m.settlements_batched, 2u);  // two hops settled
    }
  }
}

TEST(Engine, BatchedRefundRestoresUpstreamLocks) {
  auto net = line_network(whole_tokens(10));
  auto& ch = net.channel(net.topology().find_edge(1, 2));
  ASSERT_TRUE(ch.lock(ch.direction_from(1), whole_tokens(10)));  // block 1->2

  ScriptedRouter router([&](Engine& engine, const pcn::Payment& p) {
    engine.send_tu(two_hop_tu(engine.network(), p.id, p.value));
  });
  EngineConfig config;
  config.queues_enabled = false;
  config.settlement_epoch_s = 0.01;
  Engine engine(std::move(net), {make_payment(1, 0, 2, whole_tokens(5))}, router,
                config);
  const auto m = engine.run();
  EXPECT_EQ(m.tus_failed, 1u);
  // The first-hop lock was refunded through the epoch buffer.
  EXPECT_EQ(engine.network().available_from(0, 0), whole_tokens(10));
}

TEST(Engine, BatchedModeProcessesFewerEvents) {
  const auto run_with = [](double epoch_s) {
    auto net = line_network(whole_tokens(1000));
    ScriptedRouter router([&](Engine& engine, const pcn::Payment& p) {
      engine.send_tu(two_hop_tu(engine.network(), p.id, p.value));
    });
    std::vector<pcn::Payment> payments;
    for (int i = 0; i < 40; ++i) {
      payments.push_back(
          make_payment(i + 1, 0, 2, whole_tokens(2), 0.1 + 0.01 * i));
    }
    EngineConfig config;
    config.settlement_epoch_s = epoch_s;
    Engine engine(std::move(net), payments, router, config);
    return engine.run();
  };
  const auto per_hop = run_with(0.0);
  const auto batched = run_with(0.05);
  EXPECT_EQ(per_hop.payments_completed, batched.payments_completed);
  EXPECT_LT(batched.scheduler_events, per_hop.scheduler_events);
}

TEST(Engine, ArrivalTickQuantisesSameInstant) {
  // The batched-mode arrival buckets coalesce on an integer nanosecond
  // key, never on a raw double. Two computations of "the same instant"
  // that differ in the last bit must land in the same bucket...
  const double a = 0.1 + 0.2;  // 0.30000000000000004
  const double b = 0.3;
  EXPECT_NE(a, b);  // the raw doubles differ — a double-keyed map splits them
  EXPECT_EQ(Engine::arrival_tick(a), Engine::arrival_tick(b));
  // ...identical doubles trivially share a key...
  EXPECT_EQ(Engine::arrival_tick(0.015), Engine::arrival_tick(0.005 * 3));
  // ...and genuinely distinct instants (>= 1 ns apart) must not merge.
  EXPECT_NE(Engine::arrival_tick(0.015), Engine::arrival_tick(0.015 + 2e-9));
  EXPECT_NE(Engine::arrival_tick(1.0), Engine::arrival_tick(1.0 + 1e-8));
}

TEST(Engine, BatchedModeCoalescesSameInstantArrivals) {
  // Two TUs dispatched at the same instant take one shared arrival event
  // per hop in batched mode: the batched run must execute strictly fewer
  // scheduler events than twice a single-TU run's arrival share.
  const auto run_with = [](std::size_t tus) {
    auto net = line_network(whole_tokens(1000));
    ScriptedRouter router([tus](Engine& engine, const pcn::Payment& p) {
      for (std::size_t i = 0; i < tus; ++i) {
        engine.send_tu(two_hop_tu(engine.network(), p.id,
                                  p.value / static_cast<Amount>(tus)));
      }
    });
    EngineConfig config;
    config.settlement_epoch_s = 0.05;
    Engine engine(std::move(net), {make_payment(1, 0, 2, whole_tokens(4))},
                  router, config);
    return engine.run();
  };
  const auto one = run_with(1);
  const auto two = run_with(2);
  EXPECT_EQ(two.payments_completed, 1u);
  // Same-instant hop arrivals of the second TU ride the first TU's events:
  // the event count must grow by less than the single-TU arrival cost.
  EXPECT_LT(two.scheduler_events, 2 * one.scheduler_events);
}

TEST(Engine, MetricsCountsGeneratedAndValue) {
  auto net = line_network();
  ScriptedRouter router([](Engine&, const pcn::Payment&) {});
  std::vector<pcn::Payment> payments{make_payment(1, 0, 2, whole_tokens(3)),
                                     make_payment(2, 2, 0, whole_tokens(7), 0.2)};
  Engine engine(std::move(net), payments, router);
  const auto m = engine.run();
  EXPECT_EQ(m.payments_generated, 2u);
  EXPECT_EQ(m.value_generated, whole_tokens(10));
  EXPECT_DOUBLE_EQ(m.normalized_throughput(), 0.0);
}

TEST(Engine, UnknownPaymentIdStillThrowsWithRetentionOn) {
  // The orphan-tolerant TU paths only apply under eviction; with
  // retain_resolved (default) nothing is ever evicted, so a miss is a
  // router bug and must keep the historical out_of_range throw.
  ScriptedRouter router([](Engine& engine, const pcn::Payment& payment) {
    EXPECT_THROW((void)engine.payment_state(payment.id + 999),
                 std::out_of_range);
    EXPECT_EQ(engine.find_payment_state(payment.id + 999), nullptr);
    EXPECT_THROW(engine.fail_payment(payment.id + 999, FailReason::kNoPath),
                 std::out_of_range);
    TransactionUnit tu;
    tu.payment = payment.id + 999;
    tu.value = payment.value;
    tu.path.nodes = {0, 1};
    tu.path.edges = {0};
    tu.hop_amounts = {payment.value};
    EXPECT_THROW(engine.send_tu(std::move(tu)), std::out_of_range);
    engine.fail_payment(payment.id, FailReason::kNoPath);
  });
  Engine engine(line_network(), {make_payment(1, 0, 2, whole_tokens(1))},
                router, {});
  const auto m = engine.run();
  EXPECT_EQ(m.payments_failed, 1u);
  EXPECT_EQ(m.states_evicted, 0u);
}

}  // namespace
}  // namespace splicer::routing
