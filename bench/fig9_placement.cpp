// Reproduces paper Fig. 9: smooth-node placement evaluation.
//   (a) balance cost vs omega: approximation (paper Alg. 1) vs optimal
//   (b) management/synchronisation cost tradeoff with (omega, #hubs) labels
//   (c) #smooth nodes vs omega, small scale
//   (d) #smooth nodes vs omega, large scale
//   (e) avg transaction delay vs total traffic overhead, small scale,
//       with PCHs (iterating omega) vs without PCHs (source routing)
//   (f) same at large scale

#include <iostream>

#include "bench_util.h"
#include "graph/generators.h"
#include "placement/approx_solver.h"
#include "placement/cost_model.h"
#include "placement/exhaustive_solver.h"

using namespace splicer;

namespace {

const std::vector<double> kOmegas{0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.0};

void panels_abc(const graph::Graph& g, std::size_t candidates) {
  common::Table cost_table(
      {"omega", "optimal C_B", "approx C_B", "approx/optimal"});
  common::Table tradeoff_table(
      {"omega", "#hubs", "C_M (management)", "C_S (synchronisation)"});
  common::Table hubs_table({"omega", "#hubs optimal", "#hubs approx"});

  for (const double omega : kOmegas) {
    const auto instance = placement::build_instance_by_degree(g, candidates, omega);
    const auto exact = placement::solve_exhaustive(instance);
    const auto approx = placement::solve_approx(instance);

    auto row = cost_table.add_row();
    cost_table.set(row, 0, omega, 2);
    cost_table.set(row, 1, exact.costs.balance, 3);
    cost_table.set(row, 2, approx.costs.balance, 3);
    cost_table.set(row, 3, approx.costs.balance / exact.costs.balance, 3);

    row = tradeoff_table.add_row();
    tradeoff_table.set(row, 0, omega, 2);
    tradeoff_table.set(row, 1, static_cast<std::int64_t>(exact.plan.hub_count()));
    tradeoff_table.set(row, 2, exact.costs.management, 3);
    tradeoff_table.set(row, 3, exact.costs.synchronization, 3);

    row = hubs_table.add_row();
    hubs_table.set(row, 0, omega, 2);
    hubs_table.set(row, 1, static_cast<std::int64_t>(exact.plan.hub_count()));
    hubs_table.set(row, 2, static_cast<std::int64_t>(approx.plan.hub_count()));
  }
  bench::emit("fig9(a) balance cost vs omega: approximation vs optimal",
              cost_table, "fig9a_balance_cost");
  bench::emit("fig9(b) management/synchronisation tradeoff (optimal plans)",
              tradeoff_table, "fig9b_tradeoff");
  bench::emit("fig9(c) number of smooth nodes vs omega (small scale)",
              hubs_table, "fig9c_hub_count_small");
}

void panel_d() {
  common::Rng rng(bench::base_seed());
  const auto g = graph::watts_strogatz(3000, 8, 0.15, rng);
  common::Table table({"omega", "#hubs (double greedy)"});
  for (const double omega : kOmegas) {
    const auto instance = placement::build_instance_by_degree(g, 30, omega);
    const auto approx = placement::solve_approx(instance);
    const auto row = table.add_row();
    table.set(row, 0, omega, 2);
    table.set(row, 1, static_cast<std::int64_t>(approx.plan.hub_count()));
  }
  bench::emit("fig9(d) number of smooth nodes vs omega (large scale, 3000 nodes)",
              table, "fig9d_hub_count_large");
}

void panels_ef(const char* label, routing::ScenarioConfig base,
               const std::string& csv) {
  common::Table table(
      {"configuration", "avg delay (ms)", "total overhead (messages)", "TSR"});
  for (const double omega : {0.01, 0.04, 0.16, 0.64}) {
    auto config = base;
    config.placement.omega = omega;
    const auto scenario = routing::prepare_scenario(config);
    const auto m = routing::run_scheme(scenario, routing::Scheme::kSplicer);
    const auto row = table.add_row();
    table.set(row, 0,
              "with PCHs, omega=" + common::format_double(omega, 2) + " (" +
                  std::to_string(scenario.multi_star.hubs.size()) + " hubs)");
    table.set(row, 1, m.average_delay_s() * 1000.0, 1);
    table.set(row, 2, static_cast<std::int64_t>(m.messages.total()));
    table.set(row, 3, common::format_percent(m.tsr()));
  }
  // Without smooth nodes: source routing (Spider) fixed point.
  const auto scenario = routing::prepare_scenario(base);
  const auto spider = routing::run_scheme(scenario, routing::Scheme::kSpider);
  const auto row = table.add_row();
  table.set(row, 0, "without PCHs (source routing)");
  table.set(row, 1, spider.average_delay_s() * 1000.0, 1);
  table.set(row, 2, static_cast<std::int64_t>(spider.messages.total()));
  table.set(row, 3, common::format_percent(spider.tsr()));
  bench::emit(label, table, csv);
}

}  // namespace

int main() {
  std::cout << "=== Fig. 9: smooth-node placement evaluation ===\n"
            << (bench::fast_mode() ? "(fast mode: quarter workload)\n" : "");

  common::Rng rng(bench::base_seed());
  const auto g_small = graph::watts_strogatz(100, 8, 0.15, rng);
  panels_abc(g_small, 12);
  panel_d();
  panels_ef("fig9(e) delay vs overhead, small scale", bench::small_scale_config(),
            "fig9e_delay_overhead_small");
  auto large = bench::large_scale_config();
  large.workload.payment_count = bench::scaled(2000);
  panels_ef("fig9(f) delay vs overhead, large scale", large,
            "fig9f_delay_overhead_large");
  return 0;
}
