// Reproduces paper Fig. 9: smooth-node placement evaluation.
//   (a) balance cost vs omega: approximation (paper Alg. 1) vs optimal
//   (b) management/synchronisation cost tradeoff with (omega, #hubs) labels
//   (c) #smooth nodes vs omega, small scale
//   (d) #smooth nodes vs omega, large scale
//   (e) avg transaction delay vs total traffic overhead, small scale,
//       with PCHs (iterating omega) vs without PCHs (source routing)
//   (f) same at large scale
//
// The omega sweeps (independent placement solves) shard across a
// ThreadPool; the routing panels fan out through the ParallelRunner.
//
// Usage: bench_fig9_placement [--threads N]   (0 = all hardware threads)

#include <iostream>
#include <optional>

#include "bench_util.h"
#include "graph/generators.h"
#include "placement/approx_solver.h"
#include "placement/cost_model.h"
#include "placement/exhaustive_solver.h"
#include "sim/thread_pool.h"

using namespace splicer;

namespace {

const std::vector<double> kOmegas{0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.0};

void panels_abc(const graph::Graph& g, std::size_t candidates,
                sim::ThreadPool& pool) {
  struct OmegaPoint {
    placement::ExhaustiveResult exact;
    placement::ApproxResult approx;
  };
  std::vector<OmegaPoint> points(kOmegas.size());
  pool.parallel_for(kOmegas.size(), [&](std::size_t i) {
    const auto instance =
        placement::build_instance_by_degree(g, candidates, kOmegas[i]);
    points[i] = {placement::solve_exhaustive(instance),
                 placement::solve_approx(instance)};
  });

  common::Table cost_table(
      {"omega", "optimal C_B", "approx C_B", "approx/optimal"});
  common::Table tradeoff_table(
      {"omega", "#hubs", "C_M (management)", "C_S (synchronisation)"});
  common::Table hubs_table({"omega", "#hubs optimal", "#hubs approx"});

  for (std::size_t i = 0; i < kOmegas.size(); ++i) {
    const double omega = kOmegas[i];
    const auto& exact = points[i].exact;
    const auto& approx = points[i].approx;

    auto row = cost_table.add_row();
    cost_table.set(row, 0, omega, 2);
    cost_table.set(row, 1, exact.costs.balance, 3);
    cost_table.set(row, 2, approx.costs.balance, 3);
    cost_table.set(row, 3, approx.costs.balance / exact.costs.balance, 3);

    row = tradeoff_table.add_row();
    tradeoff_table.set(row, 0, omega, 2);
    tradeoff_table.set(row, 1, static_cast<std::int64_t>(exact.plan.hub_count()));
    tradeoff_table.set(row, 2, exact.costs.management, 3);
    tradeoff_table.set(row, 3, exact.costs.synchronization, 3);

    row = hubs_table.add_row();
    hubs_table.set(row, 0, omega, 2);
    hubs_table.set(row, 1, static_cast<std::int64_t>(exact.plan.hub_count()));
    hubs_table.set(row, 2, static_cast<std::int64_t>(approx.plan.hub_count()));
  }
  bench::emit("fig9(a) balance cost vs omega: approximation vs optimal",
              cost_table, "fig9a_balance_cost");
  bench::emit("fig9(b) management/synchronisation tradeoff (optimal plans)",
              tradeoff_table, "fig9b_tradeoff");
  bench::emit("fig9(c) number of smooth nodes vs omega (small scale)",
              hubs_table, "fig9c_hub_count_small");
}

void panel_d(sim::ThreadPool& pool) {
  common::Rng rng(bench::base_seed());
  const auto g = graph::watts_strogatz(3000, 8, 0.15, rng);
  std::vector<std::size_t> hub_counts(kOmegas.size());
  pool.parallel_for(kOmegas.size(), [&](std::size_t i) {
    const auto instance = placement::build_instance_by_degree(g, 30, kOmegas[i]);
    hub_counts[i] = placement::solve_approx(instance).plan.hub_count();
  });

  common::Table table({"omega", "#hubs (double greedy)"});
  for (std::size_t i = 0; i < kOmegas.size(); ++i) {
    const auto row = table.add_row();
    table.set(row, 0, kOmegas[i], 2);
    table.set(row, 1, static_cast<std::int64_t>(hub_counts[i]));
  }
  bench::emit("fig9(d) number of smooth nodes vs omega (large scale, 3000 nodes)",
              table, "fig9d_hub_count_large");
}

void panels_ef(const char* label, routing::ScenarioConfig base,
               const std::string& csv, sim::ThreadPool& pool,
               routing::ParallelRunner& runner) {
  const std::vector<double> omegas{0.01, 0.04, 0.16, 0.64};
  std::vector<routing::ScenarioConfig> configs;
  for (const double omega : omegas) {
    auto config = base;
    config.placement.omega = omega;
    configs.push_back(config);
  }
  configs.push_back(base);  // Spider baseline point

  // Prepare every evaluation point in parallel, keeping the scenarios so
  // the table can report the resulting hub counts.
  std::vector<std::optional<routing::Scenario>> slots(configs.size());
  pool.parallel_for(configs.size(), [&](std::size_t i) {
    slots[i] = routing::prepare_scenario(configs[i]);
  });
  std::vector<routing::Scenario> with_pchs;
  for (std::size_t i = 0; i < omegas.size(); ++i) {
    with_pchs.push_back(std::move(*slots[i]));
  }
  std::vector<routing::Scenario> baseline;
  baseline.push_back(std::move(*slots.back()));

  const auto splicer_results =
      runner.run_prepared(with_pchs, {{routing::Scheme::kSplicer, {}, {}}});
  // Without smooth nodes: source routing (Spider) fixed point.
  const auto spider_results =
      runner.run_prepared(baseline, {{routing::Scheme::kSpider, {}, {}}});

  common::Table table(
      {"configuration", "avg delay (ms)", "total overhead (messages)", "TSR"});
  for (std::size_t i = 0; i < omegas.size(); ++i) {
    const auto& m = splicer_results[i].front().first();
    const auto row = table.add_row();
    table.set(row, 0,
              "with PCHs, omega=" + common::format_double(omegas[i], 2) + " (" +
                  std::to_string(with_pchs[i].multi_star.hubs.size()) + " hubs)");
    table.set(row, 1, m.average_delay_s() * 1000.0, 1);
    table.set(row, 2, static_cast<std::int64_t>(m.messages.total()));
    table.set(row, 3, common::format_percent(m.tsr()));
  }
  const auto& spider = spider_results.front().front().first();
  const auto row = table.add_row();
  table.set(row, 0, "without PCHs (source routing)");
  table.set(row, 1, spider.average_delay_s() * 1000.0, 1);
  table.set(row, 2, static_cast<std::int64_t>(spider.messages.total()));
  table.set(row, 3, common::format_percent(spider.tsr()));
  bench::emit(label, table, csv);
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Fig. 9: smooth-node placement evaluation ===\n"
            << (bench::fast_mode() ? "(fast mode: quarter workload)\n" : "");

  const std::size_t threads = bench::thread_count(argc, argv);
  sim::ThreadPool pool(threads);
  routing::ParallelRunner runner({threads, /*trials=*/1});

  common::Rng rng(bench::base_seed());
  const auto g_small = graph::watts_strogatz(100, 8, 0.15, rng);
  panels_abc(g_small, 12, pool);
  panel_d(pool);
  panels_ef("fig9(e) delay vs overhead, small scale", bench::small_scale_config(),
            "fig9e_delay_overhead_small", pool, runner);
  auto large = bench::large_scale_config();
  large.workload.payment_count = bench::scaled(2000);
  panels_ef("fig9(f) delay vs overhead, large scale", large,
            "fig9f_delay_overhead_large", pool, runner);
  return 0;
}
