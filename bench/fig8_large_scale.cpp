// Reproduces paper Fig. 8: the same four panels as Fig. 7 on the
// large-scale network (3000 nodes; the paper defines >3000 nodes as
// large-scale). Splicer's margin should widen here: source-routing senders
// pay route-computation costs that grow with the topology, and the A2L
// single hub saturates under the larger offered load.

#include "fig_common.h"

int main() {
  using namespace splicer;
  std::cout << "=== Fig. 8: large-scale network (3000 nodes) ===\n"
            << (bench::fast_mode() ? "(fast mode: quarter workload)\n" : "");
  bench::run_figure("fig8", bench::large_scale_config());
  return 0;
}
