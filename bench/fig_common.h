#pragma once

// The Fig. 7 / Fig. 8 sweep driver: both figures show the same four panels
// (TSR vs channel size, TSR vs transaction size, TSR vs update time,
// normalised throughput) at the two network scales, comparing the five
// schemes. One driver, two scale configs.
//
// All (sweep point × scheme) simulations fan out across the parallel
// runner; results are merged back in sweep order, so the tables are
// byte-identical to the old strictly-sequential driver's output.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"

namespace splicer::bench {

/// Formats one table cell: the exact single-run percentage when trials ==
/// 1 (the CI byte-identity path), mean +/- 95% CI over the derived-seed
/// trials otherwise.
inline std::string percent_cell(const common::RunningStats& stats,
                                double single_run, std::size_t trials) {
  if (trials <= 1) return common::format_percent(single_run);
  return common::format_percent(stats.mean()) + " +/- " +
         common::format_percent(common::ci95_half_width(stats));
}

inline void run_figure(const std::string& figure, routing::ScenarioConfig base,
                       std::size_t threads, double settlement_epoch_s = 0.0,
                       std::size_t trials = 1, bool retain_resolved = true) {
  using routing::Scheme;
  const auto schemes = routing::comparison_schemes();
  routing::ParallelRunner runner({threads, trials});

  // Engine config shared by every panel; settlement_epoch_s = 0 and
  // retain_resolved keep the exact legacy engine paths (byte-identical
  // tables — eviction changes memory, never metrics, but stays opt-in).
  routing::SchemeConfig base_scheme_config;
  base_scheme_config.engine.settlement_epoch_s = settlement_epoch_s;
  base_scheme_config.engine.retain_resolved = retain_resolved;
  base_scheme_config.engine.full_recompute_ticks = full_recompute_mode();

  const auto scheme_header = [&] {
    std::vector<std::string> header{"sweep"};
    for (const auto s : schemes) header.emplace_back(routing::to_string(s));
    return header;
  };

  // ---- (a) TSR vs channel size + (b) TSR vs transaction size ------------
  // One joint fan-out: the two panels sweep disjoint knobs over the same
  // scheme set, so their scenarios batch into a single parallel run.
  const std::vector<double> channel_scales{0.5, 1.0, 2.0, 4.0, 8.0};
  const std::vector<double> value_scales{0.25, 0.5, 1.0, 2.0, 4.0};
  {
    std::vector<routing::ScenarioConfig> scenarios;
    for (const double scale : channel_scales) {
      auto config = base;
      config.topology.fund_scale = scale;
      scenarios.push_back(config);
    }
    for (const double scale : value_scales) {
      auto config = base;
      config.workload.value_scale = scale;
      scenarios.push_back(config);
    }

    const auto results =
        runner.run(scenarios, routing::comparison_tasks(base_scheme_config));

    common::Table channel_table(scheme_header());
    for (std::size_t row_idx = 0; row_idx < channel_scales.size(); ++row_idx) {
      const auto row = channel_table.add_row();
      channel_table.set(row, 0,
                        "x" + common::format_double(channel_scales[row_idx], 1));
      for (std::size_t i = 0; i < schemes.size(); ++i) {
        const auto& cell = results[row_idx][i];
        channel_table.set(row, i + 1,
                          percent_cell(cell.tsr, cell.first().tsr(), trials));
      }
    }
    emit(figure + "(a) TSR vs channel size (x mean 403 tokens)", channel_table,
         figure + "a_channel_size");

    common::Table value_table(scheme_header());
    for (std::size_t row_idx = 0; row_idx < value_scales.size(); ++row_idx) {
      const auto row = value_table.add_row();
      value_table.set(row, 0,
                      "x" + common::format_double(value_scales[row_idx], 2));
      const auto& point = results[channel_scales.size() + row_idx];
      for (std::size_t i = 0; i < schemes.size(); ++i) {
        value_table.set(row, i + 1,
                        percent_cell(point[i].tsr, point[i].first().tsr(),
                                     trials));
      }
    }
    emit(figure + "(b) TSR vs transaction size (x credit-card mean 88)",
         value_table, figure + "b_txn_size");
  }

  // ---- (c) TSR vs update time + (d) normalised throughput ---------------
  // One scenario, a (tau × scheme) task grid.
  {
    const std::vector<double> taus{0.1, 0.2, 0.4, 0.7, 1.0};
    std::vector<routing::SchemeTask> tasks;
    for (const double tau : taus) {
      routing::SchemeConfig scheme_config = base_scheme_config;
      scheme_config.protocol.tau_s = tau;
      for (const auto scheme : schemes) {
        tasks.push_back({scheme, scheme_config,
                         std::string(routing::to_string(scheme)) + " tau=" +
                             common::format_double(tau, 1)});
      }
    }
    const auto results = runner.run({base}, tasks).front();

    common::Table tsr_table(scheme_header());
    common::Table thr_table(scheme_header());
    std::vector<double> splicer_tsr, best_other_tsr;
    std::vector<double> splicer_thr, best_other_thr;
    for (std::size_t tau_idx = 0; tau_idx < taus.size(); ++tau_idx) {
      const auto tsr_row = tsr_table.add_row();
      const auto thr_row = thr_table.add_row();
      const auto label = common::format_double(taus[tau_idx] * 1000, 0) + "ms";
      tsr_table.set(tsr_row, 0, label);
      thr_table.set(thr_row, 0, label);
      double other_best_tsr = 0.0, other_best_thr = 0.0;
      for (std::size_t i = 0; i < schemes.size(); ++i) {
        const auto& cell = results[tau_idx * schemes.size() + i];
        const auto& m = cell.first();
        tsr_table.set(tsr_row, i + 1,
                      percent_cell(cell.tsr, m.tsr(), trials));
        thr_table.set(thr_row, i + 1,
                      percent_cell(cell.throughput, m.normalized_throughput(),
                                   trials));
        // Headline averages use the trial mean (== the single run at K=1).
        const double tsr = cell.tsr.mean();
        const double thr = cell.throughput.mean();
        if (schemes[i] == routing::Scheme::kSplicer) {
          splicer_tsr.push_back(tsr);
          splicer_thr.push_back(thr);
        } else {
          other_best_tsr = std::max(other_best_tsr, tsr);
          other_best_thr = std::max(other_best_thr, thr);
        }
      }
      best_other_tsr.push_back(other_best_tsr);
      best_other_thr.push_back(other_best_thr);
    }
    emit(figure + "(c) TSR vs update time tau", tsr_table,
         figure + "c_update_time");
    emit(figure + "(d) normalised throughput vs update time tau", thr_table,
         figure + "d_throughput");

    // Headline block (paper SS V-B: Splicer vs best-of-the-rest averages).
    double tsr_gain = 0.0, thr_gain = 0.0;
    for (std::size_t i = 0; i < splicer_tsr.size(); ++i) {
      tsr_gain += splicer_tsr[i] - best_other_tsr[i];
      thr_gain += splicer_thr[i] - best_other_thr[i];
    }
    tsr_gain /= static_cast<double>(splicer_tsr.size());
    thr_gain /= static_cast<double>(splicer_thr.size());
    std::cout << "\nHeadline (" << figure
              << "): Splicer vs best baseline, averaged over the tau sweep:\n"
              << "  TSR        " << common::format_double(tsr_gain * 100, 1)
              << " points higher\n"
              << "  throughput " << common::format_double(thr_gain * 100, 1)
              << " points higher\n";
  }
}

}  // namespace splicer::bench
