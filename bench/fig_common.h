#pragma once

// The Fig. 7 / Fig. 8 sweep driver: both figures show the same four panels
// (TSR vs channel size, TSR vs transaction size, TSR vs update time,
// normalised throughput) at the two network scales, comparing the five
// schemes. One driver, two scale configs.

#include <iostream>
#include <vector>

#include "bench_util.h"

namespace splicer::bench {

inline void run_figure(const std::string& figure, routing::ScenarioConfig base) {
  using routing::Scheme;
  const auto schemes = routing::comparison_schemes();

  const auto scheme_header = [&] {
    std::vector<std::string> header{"sweep"};
    for (const auto s : schemes) header.emplace_back(routing::to_string(s));
    return header;
  };

  // ---- (a) TSR vs channel size -----------------------------------------
  {
    common::Table table(scheme_header());
    for (const double scale : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      auto config = base;
      config.topology.fund_scale = scale;
      const auto scenario = routing::prepare_scenario(config);
      const auto row = table.add_row();
      table.set(row, 0, "x" + common::format_double(scale, 1));
      for (std::size_t i = 0; i < schemes.size(); ++i) {
        const auto m = routing::run_scheme(scenario, schemes[i]);
        table.set(row, i + 1, common::format_percent(m.tsr()));
      }
    }
    emit(figure + "(a) TSR vs channel size (x mean 403 tokens)", table,
         figure + "a_channel_size");
  }

  // ---- (b) TSR vs transaction size --------------------------------------
  {
    common::Table table(scheme_header());
    for (const double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      auto config = base;
      config.workload.value_scale = scale;
      const auto scenario = routing::prepare_scenario(config);
      const auto row = table.add_row();
      table.set(row, 0, "x" + common::format_double(scale, 2));
      for (std::size_t i = 0; i < schemes.size(); ++i) {
        const auto m = routing::run_scheme(scenario, schemes[i]);
        table.set(row, i + 1, common::format_percent(m.tsr()));
      }
    }
    emit(figure + "(b) TSR vs transaction size (x credit-card mean 88)", table,
         figure + "b_txn_size");
  }

  // ---- (c) TSR vs update time + (d) normalised throughput ---------------
  {
    common::Table tsr_table(scheme_header());
    common::Table thr_table(scheme_header());
    const auto scenario = routing::prepare_scenario(base);
    std::vector<double> splicer_tsr, best_other_tsr;
    std::vector<double> splicer_thr, best_other_thr;
    for (const double tau : {0.1, 0.2, 0.4, 0.7, 1.0}) {
      routing::SchemeConfig scheme_config;
      scheme_config.protocol.tau_s = tau;
      const auto tsr_row = tsr_table.add_row();
      const auto thr_row = thr_table.add_row();
      tsr_table.set(tsr_row, 0, common::format_double(tau * 1000, 0) + "ms");
      thr_table.set(thr_row, 0, common::format_double(tau * 1000, 0) + "ms");
      double other_best_tsr = 0.0, other_best_thr = 0.0;
      for (std::size_t i = 0; i < schemes.size(); ++i) {
        const auto m = routing::run_scheme(scenario, schemes[i], scheme_config);
        tsr_table.set(tsr_row, i + 1, common::format_percent(m.tsr()));
        thr_table.set(thr_row, i + 1,
                      common::format_percent(m.normalized_throughput()));
        if (schemes[i] == routing::Scheme::kSplicer) {
          splicer_tsr.push_back(m.tsr());
          splicer_thr.push_back(m.normalized_throughput());
        } else {
          other_best_tsr = std::max(other_best_tsr, m.tsr());
          other_best_thr = std::max(other_best_thr, m.normalized_throughput());
        }
      }
      best_other_tsr.push_back(other_best_tsr);
      best_other_thr.push_back(other_best_thr);
    }
    emit(figure + "(c) TSR vs update time tau", tsr_table,
         figure + "c_update_time");
    emit(figure + "(d) normalised throughput vs update time tau", thr_table,
         figure + "d_throughput");

    // Headline block (paper SS V-B: Splicer vs best-of-the-rest averages).
    double tsr_gain = 0.0, thr_gain = 0.0;
    for (std::size_t i = 0; i < splicer_tsr.size(); ++i) {
      tsr_gain += splicer_tsr[i] - best_other_tsr[i];
      thr_gain += splicer_thr[i] - best_other_thr[i];
    }
    tsr_gain /= static_cast<double>(splicer_tsr.size());
    thr_gain /= static_cast<double>(splicer_thr.size());
    std::cout << "\nHeadline (" << figure
              << "): Splicer vs best baseline, averaged over the tau sweep:\n"
              << "  TSR        " << common::format_double(tsr_gain * 100, 1)
              << " points higher\n"
              << "  throughput " << common::format_double(thr_gain * 100, 1)
              << " points higher\n";
  }
}

}  // namespace splicer::bench
