// Batched-settlement ablation on the Fig. 7 workload: the same five-scheme
// comparison, swept over the settlement epoch. Epoch 0 is the exact per-hop
// engine (one scheduler event per hop settle/refund); epoch > 0 coalesces
// all settle/refund work per (channel, direction) into one flush event per
// epoch. The table reports scheduler events processed and wall-clock per
// sweep point, so the event-count reduction and speedup are measured on
// exactly the workload the acceptance figures use.
//
// Usage: bench_settlement_batching [--threads N] [--no-retain]
//   (the sweep itself runs each configuration single-threaded so the
//    wall-clock column is comparable; --threads is accepted for interface
//    parity with the other benches and ignored)
//   --no-retain evicts resolved payment states: same table numbers, but
//   the "peak resident" column drops from the payment count to the
//   concurrency level (the retention contract's memory signal)

#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace splicer;
  (void)bench::thread_count(argc, argv);

  std::cout << "=== Batched settlement: Fig. 7 workload, epoch sweep ===\n"
            << (bench::fast_mode() ? "(fast mode: quarter workload)\n" : "");

  const bool retain = bench::retain_resolved(argc, argv);
  if (!retain) std::cout << "(retention off: resolved states evicted)\n";

  const auto scenario = routing::prepare_scenario(bench::small_scale_config());
  const auto schemes = routing::comparison_schemes();
  const std::vector<double> epochs_ms{0.0, 5.0, 10.0, 25.0, 50.0};

  common::Table table({"epoch (ms)", "events", "vs epoch 0", "flushes",
                       "coalesced ops", "wall (ms)", "speedup",
                       "Splicer TSR", "Splicer thr", "peak resident"});
  std::uint64_t baseline_events = 0;
  double baseline_wall_ms = 0.0;
  std::uint64_t default_epoch_events = 0;

  for (const double epoch_ms : epochs_ms) {
    routing::SchemeConfig config;
    config.engine.settlement_epoch_s = epoch_ms / 1000.0;
    config.engine.retain_resolved = retain;

    std::uint64_t events = 0, flushes = 0, coalesced = 0;
    std::size_t peak_resident = 0;
    double splicer_tsr = 0.0, splicer_thr = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (const auto scheme : schemes) {
      const auto m = routing::run_scheme(scenario, scheme, config);
      events += m.scheduler_events;
      flushes += m.settlement_flushes;
      coalesced += m.settlements_batched;
      peak_resident = std::max(peak_resident, m.peak_resident_states);
      if (scheme == routing::Scheme::kSplicer) {
        splicer_tsr = m.tsr();
        splicer_thr = m.normalized_throughput();
      }
    }
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();

    if (epoch_ms == 0.0) {
      baseline_events = events;
      baseline_wall_ms = wall_ms;
    }
    if (epoch_ms == 10.0) default_epoch_events = events;

    const auto row = table.add_row();
    table.set(row, 0, common::format_double(epoch_ms, 0));
    table.set(row, 1, static_cast<std::int64_t>(events));
    table.set(row, 2,
              common::format_double(
                  static_cast<double>(baseline_events) /
                      static_cast<double>(events),
                  2) +
                  "x");
    table.set(row, 3, static_cast<std::int64_t>(flushes));
    table.set(row, 4, static_cast<std::int64_t>(coalesced));
    table.set(row, 5, wall_ms, 1);
    table.set(row, 6, common::format_double(baseline_wall_ms / wall_ms, 2) + "x");
    table.set(row, 7, common::format_percent(splicer_tsr));
    table.set(row, 8, common::format_percent(splicer_thr));
    table.set(row, 9, static_cast<std::int64_t>(peak_resident));
  }

  bench::emit("batched settlement vs per-hop settlement (Fig. 7 workload)",
              table, "settlement_batching");

  std::cout << "\nHeadline: epoch 10 ms processes "
            << common::format_double(static_cast<double>(baseline_events) /
                                         static_cast<double>(default_epoch_events),
                                     2)
            << "x fewer scheduler events than per-hop settlement.\n";
  return 0;
}
