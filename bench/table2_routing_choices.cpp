// Reproduces paper Table II: the influence of routing choices on Splicer's
// TSR at both network scales.
//   * path type:  KSP / Heuristic / EDW / EDS   (expect EDW best)
//   * path number: 1 / 3 / 5 / 7                (expect peak at 5)
//   * scheduling: FIFO / LIFO / SPF / EDF        (expect LIFO best)

#include <iostream>

#include "bench_util.h"

using namespace splicer;

namespace {

/// Placement with a richer hub mesh (small omega) so that multi-path
/// choices between hubs are meaningful, and tightened channel funds plus a
/// heavier offered load so that the trunk mesh actually binds - with slack
/// capacity every path choice looks alike, which is not what Table II
/// measures.
routing::ScenarioConfig scale_config(bool large) {
  auto config = large ? bench::large_scale_config() : bench::small_scale_config();
  config.placement.omega = 0.01;  // management-heavy -> more hubs
  config.placement.candidate_count = large ? 30 : 12;
  config.topology.fund_scale = 0.35;
  config.workload.payment_count = bench::scaled(large ? 5000 : 3000);
  config.workload.value_scale = 1.5;
  return config;
}

}  // namespace

int main() {
  std::cout << "=== Table II: routing choices in Splicer (TSR) ===\n"
            << (bench::fast_mode() ? "(fast mode: quarter workload)\n" : "");

  common::Table table({"scale", "choice", "setting", "TSR"});
  for (const bool large : {false, true}) {
    const auto scenario = routing::prepare_scenario(scale_config(large));
    const char* scale = large ? "Large" : "Small";
    std::cout << "\n[" << scale << " scale: "
              << scenario.multi_star.hubs.size() << " hubs]\n";

    // Path type (k = 5).
    for (const auto type :
         {graph::PathType::kShortest, graph::PathType::kHeuristic,
          graph::PathType::kEdgeDisjointWidest,
          graph::PathType::kEdgeDisjointShortest}) {
      routing::SchemeConfig config;
      config.protocol.path_type = type;
      const auto m = routing::run_scheme(scenario, routing::Scheme::kSplicer, config);
      const auto row = table.add_row();
      table.set(row, 0, scale);
      table.set(row, 1, "path type");
      table.set(row, 2, graph::to_string(type));
      table.set(row, 3, common::format_percent(m.tsr()));
    }

    // Path number (EDW).
    for (const std::size_t k : {1u, 3u, 5u, 7u}) {
      routing::SchemeConfig config;
      config.protocol.k_paths = k;
      const auto m = routing::run_scheme(scenario, routing::Scheme::kSplicer, config);
      const auto row = table.add_row();
      table.set(row, 0, scale);
      table.set(row, 1, "path number");
      table.set(row, 2, std::to_string(k));
      table.set(row, 3, common::format_percent(m.tsr()));
    }

    // Queue scheduling algorithm. Source gating is disabled here so that
    // congestion actually reaches the in-network waiting queues whose
    // service order the paper compares.
    for (const auto policy :
         {routing::SchedulingPolicy::kFifo, routing::SchedulingPolicy::kLifo,
          routing::SchedulingPolicy::kSpf, routing::SchedulingPolicy::kEdf}) {
      routing::SchemeConfig config;
      config.engine.policy = policy;
      config.protocol.source_gating = false;
      // A wider marking threshold lets the queue ORDER matter (with a tight
      // T, marking aborts queued TUs before the policy can differentiate).
      config.engine.queue_delay_threshold_s = 1.2;
      const auto m = routing::run_scheme(scenario, routing::Scheme::kSplicer, config);
      const auto row = table.add_row();
      table.set(row, 0, scale);
      table.set(row, 1, "scheduling");
      table.set(row, 2, routing::to_string(policy));
      table.set(row, 3, common::format_percent(m.tsr()));
    }
  }
  bench::emit("Table II: routing choices", table, "table2_routing_choices");
  return 0;
}
