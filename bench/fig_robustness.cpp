// Hostile-world robustness sweep: how the six schemes degrade as node
// faults, channel churn and adversarial fee/timelock policies ramp up.
//
// Three panels over one shared scenario (paper-style comparison setup —
// every scheme sees the identical topology, placement and workload):
//   (a) TSR vs node fault rate (Poisson failures, exponential downtime)
//   (b) TSR vs channel churn rate (close/reopen storms with TU refunds)
//   (c) TSR vs fee/timelock policy rate (per-edge policy perturbations)
//
// The zero-rate column of every panel runs the exact benign engine paths
// (no mutators constructed, no extra RNG draws), so it doubles as a live
// cross-check against the frozen fig7 numbers. Besides the tables, a
// machine-readable BENCH_fig_robustness.json records per-cell TSR plus the
// deadlock witnesses (resident TUs and wedged queue value at run end, both
// asserted zero here — a wedge is a bench failure, not a data point).
//
// Usage: bench_fig_robustness [--threads N] [--settlement-epoch MS]
//                             [--json PATH]

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"

namespace {

using namespace splicer;

struct Cell {
  std::string scheme;
  std::string mutation;  // panel key: fault | churn | policy
  double rate = 0.0;
  routing::EngineMetrics metrics;
};

void write_json(const std::string& path, bool fast, double settlement_epoch_s,
                const std::vector<Cell>& cells) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_fig_robustness: cannot write " << path << "\n";
    return;
  }
  char buf[512];
  out << "{\n";
  out << "  \"bench\": \"fig_robustness\",\n";
  out << "  \"fast\": " << (fast ? "true" : "false") << ",\n";
  out << "  \"settlement_epoch_s\": " << settlement_epoch_s << ",\n";
  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"scheme\": \"%s\", \"mutation\": \"%s\", \"rate\": %.3f, "
        "\"tsr\": %.6f, \"mutation_events\": %llu, "
        "\"tus_failed\": %llu, \"resident_tus_at_end\": %llu, "
        "\"wedged_queue_value\": %lld}%s\n",
        c.scheme.c_str(), c.mutation.c_str(), c.rate, c.metrics.tsr(),
        static_cast<unsigned long long>(c.metrics.mutation_events),
        static_cast<unsigned long long>(c.metrics.tus_failed),
        static_cast<unsigned long long>(c.metrics.resident_tus_at_end),
        static_cast<long long>(c.metrics.wedged_queue_value),
        i + 1 < cells.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n";
  out << "}\n";
  std::cout << "(json: " << path << ")\n";
}

/// One panel: a (rate × scheme) task grid over the shared scenario.
/// `configure` stamps the swept hostile knob(s) into the engine config.
template <typename Configure>
std::vector<Cell> run_panel(routing::ParallelRunner& runner,
                            const routing::ScenarioConfig& scenario,
                            const routing::SchemeConfig& base,
                            const std::string& panel_title,
                            const std::string& csv_name,
                            const std::string& mutation_key,
                            const std::vector<double>& rates,
                            Configure&& configure) {
  const auto schemes = routing::comparison_schemes();
  std::vector<routing::SchemeTask> tasks;
  for (const double rate : rates) {
    routing::SchemeConfig config = base;
    configure(config.engine.hostile, rate);
    for (const auto scheme : schemes) {
      tasks.push_back({scheme, config,
                       std::string(routing::to_string(scheme)) + " " +
                           mutation_key + "=" + common::format_double(rate, 2)});
    }
  }
  const auto results = runner.run({scenario}, tasks).front();

  std::vector<std::string> header{mutation_key + "/s"};
  for (const auto s : schemes) header.emplace_back(routing::to_string(s));
  common::Table table(header);
  std::vector<Cell> cells;
  for (std::size_t r = 0; r < rates.size(); ++r) {
    const auto row = table.add_row();
    table.set(row, 0, common::format_double(rates[r], 2));
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      const auto& m = results[r * schemes.size() + i].first();
      table.set(row, i + 1, common::format_percent(m.tsr()));
      if (m.resident_tus_at_end != 0 || m.wedged_queue_value != 0) {
        std::cerr << "bench_fig_robustness: wedged liquidity under "
                  << routing::to_string(schemes[i]) << " " << mutation_key
                  << "=" << rates[r] << " (resident=" << m.resident_tus_at_end
                  << ", wedged_value=" << m.wedged_queue_value << ")\n";
        std::exit(1);
      }
      cells.push_back(Cell{routing::to_string(schemes[i]), mutation_key,
                           rates[r], m});
    }
  }
  splicer::bench::emit(panel_title, table, csv_name);
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace splicer;

  const std::size_t threads = bench::thread_count(argc, argv);
  const double epoch_s = bench::settlement_epoch_s(argc, argv);
  std::string json_path = "BENCH_fig_robustness.json";
  if (const char* env = std::getenv("SPLICER_BENCH_JSON")) json_path = env;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  const routing::ScenarioConfig scenario = bench::small_scale_config();
  routing::SchemeConfig base;
  base.engine.settlement_epoch_s = epoch_s;
  base.engine.full_recompute_ticks = bench::full_recompute_mode();

  routing::ParallelRunner runner({threads, 1});

  // Per-second Poisson rates over the ~25 s workload horizon; the zero
  // column is the benign reference (identical to the fig7 engine paths).
  const std::vector<double> rates = bench::fast_mode()
                                        ? std::vector<double>{0.0, 0.5, 2.0}
                                        : std::vector<double>{0.0, 0.25, 0.5,
                                                              1.0, 2.0, 4.0};

  std::vector<Cell> cells;
  auto fault = run_panel(
      runner, scenario, base, "Robustness (a) TSR vs node fault rate",
      "robustness_a_fault_rate", "fault", rates,
      [](pcn::HostileConfig& hostile, double rate) {
        hostile.fault_rate = rate;
        hostile.mean_down_s = 0.5;
      });
  cells.insert(cells.end(), fault.begin(), fault.end());

  auto churn = run_panel(
      runner, scenario, base, "Robustness (b) TSR vs channel churn rate",
      "robustness_b_churn_rate", "churn", rates,
      [](pcn::HostileConfig& hostile, double rate) {
        hostile.churn_rate = rate;
        hostile.mean_closed_s = 0.5;
      });
  cells.insert(cells.end(), churn.begin(), churn.end());

  auto policy = run_panel(
      runner, scenario, base,
      "Robustness (c) TSR vs fee/timelock policy rate",
      "robustness_c_policy_rate", "policy", rates,
      [](pcn::HostileConfig& hostile, double rate) {
        hostile.fee_policy_rate = rate;
        hostile.timelock_rate = rate;
        hostile.timelock_max = 4;
        hostile.timelock_budget = 24;
      });
  cells.insert(cells.end(), policy.begin(), policy.end());

  write_json(json_path, bench::fast_mode(), epoch_s, cells);
  return 0;
}
