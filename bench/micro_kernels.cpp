// Micro-benchmarks (google-benchmark) for the computational kernels behind
// the reproduction: graph algorithms, the LP/MILP solver, the supermodular
// double greedy, crypto primitives and the routing engine event loop.

#include <benchmark/benchmark.h>

#include "crypto/elgamal.h"
#include "crypto/shamir.h"
#include "graph/disjoint_paths.h"
#include "graph/generators.h"
#include "graph/max_flow.h"
#include "graph/shortest_path.h"
#include "graph/yen.h"
#include "placement/approx_solver.h"
#include "placement/cost_model.h"
#include "placement/milp_solver.h"
#include "routing/experiment.h"
#include "routing/spider_router.h"

namespace {

using namespace splicer;

graph::Graph make_graph(std::size_t n) {
  common::Rng rng(1);
  auto g = graph::watts_strogatz(n, 8, 0.15, rng);
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    g.set_capacity(e, rng.uniform(10.0, 1000.0));
  }
  return g;
}

void BM_WattsStrogatz(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    common::Rng rng(7);
    benchmark::DoNotOptimize(graph::watts_strogatz(n, 8, 0.15, rng));
  }
}
BENCHMARK(BM_WattsStrogatz)->Arg(100)->Arg(1000)->Arg(3000);

void BM_Dijkstra(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::dijkstra(g, 0));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(100)->Arg(1000)->Arg(3000);

void BM_YenK5(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::yen_ksp(g, 0, static_cast<graph::NodeId>(g.node_count() / 2), 5));
  }
}
BENCHMARK(BM_YenK5)->Arg(100)->Arg(500);

void BM_EdgeDisjointWidest(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::edge_disjoint_widest_paths(
        g, 0, static_cast<graph::NodeId>(g.node_count() / 2), 5));
  }
}
BENCHMARK(BM_EdgeDisjointWidest)->Arg(100)->Arg(1000)->Arg(3000);

void BM_MaxFlow(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  graph::MaxFlowOptions options;
  options.flow_limit = 500.0;
  options.max_paths = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::max_flow(
        g, 0, static_cast<graph::NodeId>(g.node_count() / 2), options));
  }
}
BENCHMARK(BM_MaxFlow)->Arg(100)->Arg(1000)->Arg(3000);

void BM_PlacementMilp(benchmark::State& state) {
  common::Rng rng(2);
  const auto g = graph::watts_strogatz(
      static_cast<std::size_t>(state.range(0)), 4, 0.2, rng);
  const auto instance =
      placement::build_instance_by_degree(g, static_cast<std::size_t>(state.range(1)), 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::solve_milp(instance));
  }
}
BENCHMARK(BM_PlacementMilp)->Args({12, 3})->Args({16, 4})->Unit(benchmark::kMillisecond);

void BM_PlacementDoubleGreedy(benchmark::State& state) {
  common::Rng rng(3);
  const auto g = graph::watts_strogatz(
      static_cast<std::size_t>(state.range(0)), 8, 0.15, rng);
  const auto instance = placement::build_instance_by_degree(
      g, static_cast<std::size_t>(state.range(1)), 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::solve_approx(instance));
  }
}
BENCHMARK(BM_PlacementDoubleGreedy)
    ->Args({100, 10})
    ->Args({1000, 30})
    ->Args({3000, 30})
    ->Unit(benchmark::kMillisecond);

void BM_ElGamalRoundTrip(benchmark::State& state) {
  common::Rng rng(4);
  const auto kp = crypto::generate_keypair(rng);
  const crypto::Bytes payload(64, 0xab);
  for (auto _ : state) {
    const auto ct = crypto::encrypt(kp.public_key, payload, rng);
    crypto::Bytes out;
    benchmark::DoNotOptimize(crypto::decrypt(kp.secret_key, ct, out));
  }
}
BENCHMARK(BM_ElGamalRoundTrip);

void BM_ShamirSplitReconstruct(benchmark::State& state) {
  common::Rng rng(5);
  for (auto _ : state) {
    const auto shares = crypto::split_secret(123456789, 5, 3, rng);
    benchmark::DoNotOptimize(
        crypto::reconstruct_secret({shares[0], shares[1], shares[2]}));
  }
}
BENCHMARK(BM_ShamirSplitReconstruct);

/// One rate-control tick (price updates + probes) at a controlled
/// dirty-channel fraction, via the public run_protocol_tick hook. A short
/// warm-up simulation seeds real pair/path/price state; each iteration
/// then feeds crafted TU arrivals into `dirty_pct` percent of the channels
/// (round-robin, deterministic) and runs one tick. Args: {dirty_pct,
/// full_recompute} — comparing full_recompute 0 vs 1 at the same fraction
/// is the incremental tick's speedup; the fraction sweep shows how it
/// narrows as more of the network goes dirty per tick, and inverts at
/// 100% (every flat changing every tick pays the change-tracking writes
/// and subscription checks with nothing left to skip — the regime the
/// full_recompute knob exists for).
void BM_RateTick(benchmark::State& state) {
  const auto dirty_pct = static_cast<std::size_t>(state.range(0));
  const bool full_recompute = state.range(1) != 0;
  auto g = make_graph(600);
  auto network =
      pcn::Network::with_uniform_funds(std::move(g), common::whole_tokens(400));
  const std::size_t channels = network.channel_count();

  // Warm-up workload: 60 sender/receiver pairs, four payments each, all
  // arriving inside the first two seconds; run_window(8) lets them resolve
  // so the tick loop below runs on settled-but-realistic router state.
  common::Rng rng(11);
  std::vector<pcn::Payment> payments;
  for (std::size_t i = 0; i < 240; ++i) {
    pcn::Payment p;
    p.id = i + 1;
    p.sender = static_cast<pcn::NodeId>(rng.next_below(600));
    do {
      p.receiver = static_cast<pcn::NodeId>(rng.next_below(600));
    } while (p.receiver == p.sender);
    p.value = common::whole_tokens(static_cast<pcn::Amount>(rng.uniform_int(2, 20)));
    p.arrival_time = rng.uniform(0.05, 2.0);
    p.deadline = p.arrival_time + 3.0;
    payments.push_back(p);
  }
  std::sort(payments.begin(), payments.end(), [](const auto& a, const auto& b) {
    return a.arrival_time < b.arrival_time;
  });
  for (std::size_t i = 0; i < payments.size(); ++i) {
    payments[i].id = i + 1;
  }

  routing::SpiderRouter router;
  routing::EngineConfig config;
  config.full_recompute_ticks = full_recompute;
  routing::Engine engine(std::move(network), std::move(payments), router,
                         config);
  engine.begin_run();
  (void)engine.run_window(8.0);

  const std::size_t dirty_count = channels * dirty_pct / 100;
  std::size_t next_channel = 0;
  routing::TransactionUnit tu;
  tu.hop_amounts = {common::whole_tokens(2)};
  tu.next_hop = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < dirty_count; ++i) {
      router.on_tu_forwarded(engine, tu,
                             static_cast<pcn::ChannelId>(next_channel % channels),
                             pcn::Direction::kForward);
      ++next_channel;
    }
    router.run_protocol_tick(engine);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * channels));
  state.counters["price_updates_skipped"] = static_cast<double>(
      engine.metrics().price_updates_skipped);
  state.counters["probe_sums_reused"] =
      static_cast<double>(engine.metrics().probe_sums_reused);
}
BENCHMARK(BM_RateTick)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({100, 0})
    ->Args({100, 1});

void BM_SplicerSimulation(benchmark::State& state) {
  routing::ScenarioConfig config;
  config.seed = 42;
  config.topology.nodes = static_cast<std::size_t>(state.range(0));
  config.placement.candidate_count = config.topology.nodes >= 1000 ? 30 : 10;
  config.placement.prefer_exact = config.topology.nodes < 1000;
  config.workload.payment_count = 500;
  config.workload.horizon_seconds = 8.0;
  const auto scenario = routing::prepare_scenario(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::run_scheme(scenario, routing::Scheme::kSplicer));
  }
  state.SetItemsProcessed(state.iterations() * 500);  // payments per iter
}
BENCHMARK(BM_SplicerSimulation)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace
