// Micro-benchmarks (google-benchmark) for the computational kernels behind
// the reproduction: graph algorithms, the LP/MILP solver, the supermodular
// double greedy, crypto primitives and the routing engine event loop.

#include <benchmark/benchmark.h>

#include "crypto/elgamal.h"
#include "crypto/shamir.h"
#include "graph/disjoint_paths.h"
#include "graph/generators.h"
#include "graph/max_flow.h"
#include "graph/shortest_path.h"
#include "graph/yen.h"
#include "placement/approx_solver.h"
#include "placement/cost_model.h"
#include "placement/milp_solver.h"
#include "routing/experiment.h"

namespace {

using namespace splicer;

graph::Graph make_graph(std::size_t n) {
  common::Rng rng(1);
  auto g = graph::watts_strogatz(n, 8, 0.15, rng);
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    g.set_capacity(e, rng.uniform(10.0, 1000.0));
  }
  return g;
}

void BM_WattsStrogatz(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    common::Rng rng(7);
    benchmark::DoNotOptimize(graph::watts_strogatz(n, 8, 0.15, rng));
  }
}
BENCHMARK(BM_WattsStrogatz)->Arg(100)->Arg(1000)->Arg(3000);

void BM_Dijkstra(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::dijkstra(g, 0));
  }
}
BENCHMARK(BM_Dijkstra)->Arg(100)->Arg(1000)->Arg(3000);

void BM_YenK5(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::yen_ksp(g, 0, static_cast<graph::NodeId>(g.node_count() / 2), 5));
  }
}
BENCHMARK(BM_YenK5)->Arg(100)->Arg(500);

void BM_EdgeDisjointWidest(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::edge_disjoint_widest_paths(
        g, 0, static_cast<graph::NodeId>(g.node_count() / 2), 5));
  }
}
BENCHMARK(BM_EdgeDisjointWidest)->Arg(100)->Arg(1000)->Arg(3000);

void BM_MaxFlow(benchmark::State& state) {
  const auto g = make_graph(static_cast<std::size_t>(state.range(0)));
  graph::MaxFlowOptions options;
  options.flow_limit = 500.0;
  options.max_paths = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::max_flow(
        g, 0, static_cast<graph::NodeId>(g.node_count() / 2), options));
  }
}
BENCHMARK(BM_MaxFlow)->Arg(100)->Arg(1000)->Arg(3000);

void BM_PlacementMilp(benchmark::State& state) {
  common::Rng rng(2);
  const auto g = graph::watts_strogatz(
      static_cast<std::size_t>(state.range(0)), 4, 0.2, rng);
  const auto instance =
      placement::build_instance_by_degree(g, static_cast<std::size_t>(state.range(1)), 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::solve_milp(instance));
  }
}
BENCHMARK(BM_PlacementMilp)->Args({12, 3})->Args({16, 4})->Unit(benchmark::kMillisecond);

void BM_PlacementDoubleGreedy(benchmark::State& state) {
  common::Rng rng(3);
  const auto g = graph::watts_strogatz(
      static_cast<std::size_t>(state.range(0)), 8, 0.15, rng);
  const auto instance = placement::build_instance_by_degree(
      g, static_cast<std::size_t>(state.range(1)), 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::solve_approx(instance));
  }
}
BENCHMARK(BM_PlacementDoubleGreedy)
    ->Args({100, 10})
    ->Args({1000, 30})
    ->Args({3000, 30})
    ->Unit(benchmark::kMillisecond);

void BM_ElGamalRoundTrip(benchmark::State& state) {
  common::Rng rng(4);
  const auto kp = crypto::generate_keypair(rng);
  const crypto::Bytes payload(64, 0xab);
  for (auto _ : state) {
    const auto ct = crypto::encrypt(kp.public_key, payload, rng);
    crypto::Bytes out;
    benchmark::DoNotOptimize(crypto::decrypt(kp.secret_key, ct, out));
  }
}
BENCHMARK(BM_ElGamalRoundTrip);

void BM_ShamirSplitReconstruct(benchmark::State& state) {
  common::Rng rng(5);
  for (auto _ : state) {
    const auto shares = crypto::split_secret(123456789, 5, 3, rng);
    benchmark::DoNotOptimize(
        crypto::reconstruct_secret({shares[0], shares[1], shares[2]}));
  }
}
BENCHMARK(BM_ShamirSplitReconstruct);

void BM_SplicerSimulation(benchmark::State& state) {
  routing::ScenarioConfig config;
  config.seed = 42;
  config.topology.nodes = static_cast<std::size_t>(state.range(0));
  config.placement.candidate_count = config.topology.nodes >= 1000 ? 30 : 10;
  config.placement.prefer_exact = config.topology.nodes < 1000;
  config.workload.payment_count = 500;
  config.workload.horizon_seconds = 8.0;
  const auto scenario = routing::prepare_scenario(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::run_scheme(scenario, routing::Scheme::kSplicer));
  }
  state.SetItemsProcessed(state.iterations() * 500);  // payments per iter
}
BENCHMARK(BM_SplicerSimulation)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace
