// Placement-solver ablation (DESIGN.md SS6): exhaustive optimum vs the
// paper's Alg. 1 double greedy (deterministic + randomised) vs plain
// greedy descent, across omegas, with oracle-call counts - the cost of
// optimality at a glance.

#include <iostream>

#include "bench_util.h"
#include "graph/generators.h"
#include "placement/approx_solver.h"
#include "placement/cost_model.h"
#include "placement/exhaustive_solver.h"

using namespace splicer;

int main() {
  std::cout << "=== Ablation: placement solvers ===\n";
  common::Rng rng(bench::base_seed());
  const auto g = graph::watts_strogatz(100, 8, 0.15, rng);

  common::Table table({"omega", "solver", "C_B", "vs optimal", "#hubs",
                       "oracle calls"});
  for (const double omega : {0.02, 0.1, 0.5}) {
    const auto instance = placement::build_instance_by_degree(g, 14, omega);
    const auto exact = placement::solve_exhaustive(instance);

    const auto add = [&](const std::string& name, double cost, std::size_t hubs,
                         std::size_t calls) {
      const auto row = table.add_row();
      table.set(row, 0, omega, 2);
      table.set(row, 1, name);
      table.set(row, 2, cost, 3);
      table.set(row, 3, cost / exact.costs.balance, 3);
      table.set(row, 4, static_cast<std::int64_t>(hubs));
      table.set(row, 5, static_cast<std::int64_t>(calls));
    };

    add("exhaustive (optimal)", exact.costs.balance, exact.plan.hub_count(),
        exact.subsets_evaluated);
    const auto det = placement::solve_approx(instance);
    add("double greedy (det.)", det.costs.balance, det.plan.hub_count(),
        det.oracle_calls);
    common::Rng greedy_rng(bench::base_seed() ^ 0x5eed);
    const auto rand = placement::solve_approx_randomized(instance, greedy_rng);
    add("double greedy (rand.)", rand.costs.balance, rand.plan.hub_count(),
        rand.oracle_calls);
    const auto descent = placement::solve_greedy_descent(instance);
    add("greedy descent", descent.costs.balance, descent.plan.hub_count(),
        descent.oracle_calls);
  }
  bench::emit("placement solver ablation (100 nodes, 14 candidates)", table,
              "ablation_placement");

  // Scaling: double-greedy oracle calls are linear in the candidate count.
  common::Table scaling({"candidates", "oracle calls", "C_B", "#hubs"});
  common::Rng rng2(bench::base_seed() + 1);
  const auto g_large = graph::watts_strogatz(2000, 8, 0.15, rng2);
  for (const std::size_t candidates : {10u, 20u, 40u, 80u}) {
    const auto instance =
        placement::build_instance_by_degree(g_large, candidates, 0.1);
    const auto approx = placement::solve_approx(instance);
    const auto row = scaling.add_row();
    scaling.set(row, 0, static_cast<std::int64_t>(candidates));
    scaling.set(row, 1, static_cast<std::int64_t>(approx.oracle_calls));
    scaling.set(row, 2, approx.costs.balance, 3);
    scaling.set(row, 3, static_cast<std::int64_t>(approx.plan.hub_count()));
  }
  bench::emit("double-greedy scaling (2000-node graph)", scaling,
              "ablation_placement_scaling");
  return 0;
}
