// Placement-solver ablation (DESIGN.md SS6): exhaustive optimum vs the
// paper's Alg. 1 double greedy (deterministic + randomised) vs plain
// greedy descent, across omegas, with oracle-call counts - the cost of
// optimality at a glance. The per-omega and per-candidate-count solves are
// independent, so both sweeps shard across the thread pool.
//
// Usage: bench_ablation_placement [--threads N]

#include <iostream>

#include "bench_util.h"
#include "graph/generators.h"
#include "placement/approx_solver.h"
#include "placement/cost_model.h"
#include "placement/exhaustive_solver.h"
#include "sim/thread_pool.h"

using namespace splicer;

int main(int argc, char** argv) {
  std::cout << "=== Ablation: placement solvers ===\n";
  sim::ThreadPool pool(bench::thread_count(argc, argv));
  common::Rng rng(bench::base_seed());
  const auto g = graph::watts_strogatz(100, 8, 0.15, rng);

  struct OmegaPoint {
    placement::ExhaustiveResult exact;
    placement::ApproxResult det;
    placement::ApproxResult rand;
    placement::ApproxResult descent;
  };
  const std::vector<double> omegas{0.02, 0.1, 0.5};
  std::vector<OmegaPoint> points(omegas.size());
  pool.parallel_for(omegas.size(), [&](std::size_t i) {
    const auto instance = placement::build_instance_by_degree(g, 14, omegas[i]);
    OmegaPoint& p = points[i];
    p.exact = placement::solve_exhaustive(instance);
    p.det = placement::solve_approx(instance);
    common::Rng greedy_rng(bench::base_seed() ^ 0x5eed);
    p.rand = placement::solve_approx_randomized(instance, greedy_rng);
    p.descent = placement::solve_greedy_descent(instance);
  });

  common::Table table({"omega", "solver", "C_B", "vs optimal", "#hubs",
                       "oracle calls"});
  for (std::size_t i = 0; i < omegas.size(); ++i) {
    const OmegaPoint& p = points[i];
    const auto add = [&](const std::string& name, double cost, std::size_t hubs,
                         std::size_t calls) {
      const auto row = table.add_row();
      table.set(row, 0, omegas[i], 2);
      table.set(row, 1, name);
      table.set(row, 2, cost, 3);
      table.set(row, 3, cost / p.exact.costs.balance, 3);
      table.set(row, 4, static_cast<std::int64_t>(hubs));
      table.set(row, 5, static_cast<std::int64_t>(calls));
    };
    add("exhaustive (optimal)", p.exact.costs.balance, p.exact.plan.hub_count(),
        p.exact.subsets_evaluated);
    add("double greedy (det.)", p.det.costs.balance, p.det.plan.hub_count(),
        p.det.oracle_calls);
    add("double greedy (rand.)", p.rand.costs.balance, p.rand.plan.hub_count(),
        p.rand.oracle_calls);
    add("greedy descent", p.descent.costs.balance, p.descent.plan.hub_count(),
        p.descent.oracle_calls);
  }
  bench::emit("placement solver ablation (100 nodes, 14 candidates)", table,
              "ablation_placement");

  // Scaling: double-greedy oracle calls are linear in the candidate count.
  common::Rng rng2(bench::base_seed() + 1);
  const auto g_large = graph::watts_strogatz(2000, 8, 0.15, rng2);
  const std::vector<std::size_t> candidate_counts{10, 20, 40, 80};
  std::vector<placement::ApproxResult> scaling_points(candidate_counts.size());
  pool.parallel_for(candidate_counts.size(), [&](std::size_t i) {
    const auto instance =
        placement::build_instance_by_degree(g_large, candidate_counts[i], 0.1);
    scaling_points[i] = placement::solve_approx(instance);
  });

  common::Table scaling({"candidates", "oracle calls", "C_B", "#hubs"});
  for (std::size_t i = 0; i < candidate_counts.size(); ++i) {
    const auto& approx = scaling_points[i];
    const auto row = scaling.add_row();
    scaling.set(row, 0, static_cast<std::int64_t>(candidate_counts[i]));
    scaling.set(row, 1, static_cast<std::int64_t>(approx.oracle_calls));
    scaling.set(row, 2, approx.costs.balance, 3);
    scaling.set(row, 3, static_cast<std::int64_t>(approx.plan.hub_count()));
  }
  bench::emit("double-greedy scaling (2000-node graph)", scaling,
              "ablation_placement_scaling");
  return 0;
}
