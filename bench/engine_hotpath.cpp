// Engine hot-path microbench: drives the fixed Fig. 7 workload through all
// six schemes on a single thread and reports scheduler-event throughput —
// events/sec, ns/event, a peak-RSS proxy and the raw event count — as a
// table and as machine-readable BENCH_engine_hotpath.json. CI archives the
// JSON on every run so the perf trajectory of the event loop is recorded
// over time (compare `events_per_sec` across commits on the same machine).
//
// A second section sweeps the sharded engine over 1/2/4/8 shards on a
// heavier workload (4x payments) and reports, per shard count, aggregate
// events/sec across all six schemes plus two speedups: `measured` (wall
// clock on this machine — bounded by its core count) and `projected`
// (total events over the BSP critical path, i.e. the speedup the partition
// admits once one core per shard is available). Both land in the JSON under
// "shard_sweep" and are archived by CI.
//
// Usage: bench_engine_hotpath [--fast] [--repeat K] [--settlement-epoch MS]
//                             [--json PATH] [--no-sweep]
//   --fast        quarter-size workload (same as SPLICER_BENCH_FAST=1)
//   --repeat K    run each scheme K times, report the best wall time
//                 (default 3; metrics are identical across repeats)
//   --json PATH   JSON output path (default: BENCH_engine_hotpath.json,
//                 or $SPLICER_BENCH_JSON)
//   --no-sweep    skip the shard-scaling sweep

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "routing/experiment.h"
#include "routing/sharded_engine.h"

namespace {

using namespace splicer;

/// Peak resident-set proxy in KiB: VmHWM from /proc/self/status where
/// available (Linux), 0 elsewhere. Process-wide high-water mark, so scheme
/// rows are cumulative — the per-run signal is the delta between rows.
long peak_rss_kib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

struct SchemeResult {
  std::string name;
  double best_wall_s = 0.0;
  routing::EngineMetrics metrics;
  long rss_after_kib = 0;

  [[nodiscard]] double events_per_sec() const {
    return best_wall_s > 0
               ? static_cast<double>(metrics.scheduler_events) / best_wall_s
               : 0.0;
  }
  [[nodiscard]] double ns_per_event() const {
    return metrics.scheduler_events > 0
               ? best_wall_s * 1e9 /
                     static_cast<double>(metrics.scheduler_events)
               : 0.0;
  }
};

struct SweepPoint {
  std::uint32_t shards = 1;
  double wall_s = 0.0;              // summed best-of walls, all six schemes
  std::uint64_t events = 0;         // summed scheduler events
  std::uint64_t critical_path = 0;  // summed BSP critical-path events

  [[nodiscard]] double events_per_sec() const {
    return wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0;
  }
  /// Speedup the partition admits with one core per shard: total events
  /// over the busiest-shard-per-window sum (stragglers included).
  [[nodiscard]] double projected_speedup() const {
    return critical_path > 0
               ? static_cast<double>(events) / static_cast<double>(critical_path)
               : 1.0;
  }
};

void write_json(const std::string& path, const std::string& workload,
                bool fast, std::size_t repeat, double settlement_epoch_s,
                std::size_t payments,
                const std::vector<SchemeResult>& results,
                std::size_t sweep_payments,
                const std::vector<SweepPoint>& sweep) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_engine_hotpath: cannot write " << path << "\n";
    return;
  }
  std::uint64_t total_events = 0;
  double total_wall = 0.0;
  for (const auto& r : results) {
    total_events += r.metrics.scheduler_events;
    total_wall += r.best_wall_s;
  }
  char buf[512];
  out << "{\n";
  out << "  \"bench\": \"engine_hotpath\",\n";
  out << "  \"workload\": \"" << workload << "\",\n";
  out << "  \"fast\": " << (fast ? "true" : "false") << ",\n";
  out << "  \"repeat\": " << repeat << ",\n";
  out << "  \"settlement_epoch_s\": " << settlement_epoch_s << ",\n";
  out << "  \"payments\": " << payments << ",\n";
  out << "  \"schemes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    // The three tick-work counters record how much per-tick rate-control
    // work the incremental mode skipped (all zero for non-rate schemes and
    // under SPLICER_FULL_RECOMPUTE=1).
    std::snprintf(buf, sizeof(buf),
                  "    {\"scheme\": \"%s\", \"wall_s\": %.6f, "
                  "\"scheduler_events\": %llu, \"events_per_sec\": %.0f, "
                  "\"ns_per_event\": %.1f, \"peak_rss_kib\": %ld, "
                  "\"tsr\": %.6f, "
                  "\"price_updates_skipped\": %llu, "
                  "\"probe_sums_reused\": %llu, "
                  "\"active_pairs_peak\": %llu}%s\n",
                  r.name.c_str(), r.best_wall_s,
                  static_cast<unsigned long long>(r.metrics.scheduler_events),
                  r.events_per_sec(), r.ns_per_event(), r.rss_after_kib,
                  r.metrics.tsr(),
                  static_cast<unsigned long long>(
                      r.metrics.price_updates_skipped),
                  static_cast<unsigned long long>(r.metrics.probe_sums_reused),
                  static_cast<unsigned long long>(r.metrics.active_pairs_peak),
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"total\": {\"scheduler_events\": %llu, \"wall_s\": %.6f, "
                "\"events_per_sec\": %.0f}",
                static_cast<unsigned long long>(total_events), total_wall,
                total_wall > 0
                    ? static_cast<double>(total_events) / total_wall
                    : 0.0);
  out << buf;
  if (!sweep.empty()) {
    const double base_eps = sweep.front().events_per_sec();
    out << ",\n  \"shard_sweep\": {\n";
    out << "    \"payments\": " << sweep_payments << ",\n";
    out << "    \"schemes_per_point\": 6,\n";
    out << "    \"points\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto& p = sweep[i];
      std::snprintf(
          buf, sizeof(buf),
          "      {\"shards\": %u, \"wall_s\": %.6f, "
          "\"scheduler_events\": %llu, \"events_per_sec\": %.0f, "
          "\"measured_speedup\": %.3f, \"projected_speedup\": %.3f}%s\n",
          p.shards, p.wall_s, static_cast<unsigned long long>(p.events),
          p.events_per_sec(),
          base_eps > 0 ? p.events_per_sec() / base_eps : 0.0,
          p.projected_speedup(), i + 1 < sweep.size() ? "," : "");
      out << buf;
    }
    out << "    ]\n";
    out << "  }\n";
  } else {
    out << "\n";
  }
  out << "}\n";
  std::cout << "(json: " << path << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t repeat = 3;
  bool run_sweep = true;
  std::string json_path;
  if (const char* env = std::getenv("SPLICER_BENCH_JSON")) json_path = env;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      setenv("SPLICER_BENCH_FAST", "1", 1);
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::max<std::size_t>(1, std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--no-sweep") == 0) {
      run_sweep = false;
    }
  }
  if (json_path.empty()) json_path = "BENCH_engine_hotpath.json";

  const double epoch_s = bench::settlement_epoch_s(argc, argv);
  auto config = bench::small_scale_config();
  const auto scenario = routing::prepare_scenario(config);

  routing::SchemeConfig scheme_config;
  scheme_config.engine.settlement_epoch_s = epoch_s;
  scheme_config.engine.full_recompute_ticks = bench::full_recompute_mode();

  // All six schemes, not just the figure-comparison five: the hot path must
  // stay fast for every router's event mix (ShortestPath = atomic HTLCs).
  const std::vector<routing::Scheme> schemes{
      routing::Scheme::kSplicer,   routing::Scheme::kSpider,
      routing::Scheme::kFlash,     routing::Scheme::kLandmark,
      routing::Scheme::kA2l,       routing::Scheme::kShortestPath};

  std::vector<SchemeResult> results;
  for (const auto scheme : schemes) {
    SchemeResult result;
    result.name = routing::to_string(scheme);
    result.best_wall_s = std::numeric_limits<double>::infinity();
    for (std::size_t rep = 0; rep < repeat; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      result.metrics = routing::run_scheme(scenario, scheme, scheme_config);
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - start;
      result.best_wall_s = std::min(result.best_wall_s, wall.count());
    }
    result.rss_after_kib = peak_rss_kib();
    results.push_back(std::move(result));
  }

  common::Table table({"scheme", "wall_s", "events", "events/s", "ns/event",
                       "peak_rss_kib", "tsr"});
  for (const auto& r : results) {
    const auto row = table.add_row();
    table.set(row, 0, r.name);
    table.set(row, 1, common::format_double(r.best_wall_s, 4));
    table.set(row, 2, std::to_string(r.metrics.scheduler_events));
    table.set(row, 3, common::format_double(r.events_per_sec(), 0));
    table.set(row, 4, common::format_double(r.ns_per_event(), 1));
    table.set(row, 5, std::to_string(r.rss_after_kib));
    table.set(row, 6, common::format_percent(r.metrics.tsr()));
  }
  bench::emit("Engine hot path (Fig. 7 workload, 1 thread, best of " +
                  std::to_string(repeat) + ")",
              table, "engine_hotpath");

  // ---- shard-scaling sweep -------------------------------------------------
  // Heavier workload (4x payments, same horizon) so each barrier window
  // carries enough events to amortise coordination; every shard count runs
  // all six schemes through run_scheme_sharded with default threading
  // (min(shards, cores)). On a machine with fewer cores than shards the
  // measured column saturates at the core count while the projected column
  // (events / BSP critical path) still reports the partition's scalability.
  std::vector<SweepPoint> sweep;
  std::size_t sweep_payments = 0;
  if (run_sweep) {
    auto sweep_config = config;
    sweep_config.workload.payment_count *= 4;
    const auto sweep_scenario = routing::prepare_scenario(sweep_config);
    sweep_payments = sweep_config.workload.payment_count;
    const std::size_t sweep_repeat = bench::fast_mode() ? 1 : 2;
    for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
      SweepPoint point;
      point.shards = shards;
      for (const auto scheme : schemes) {
        double best_wall = std::numeric_limits<double>::infinity();
        routing::EngineMetrics metrics;
        for (std::size_t rep = 0; rep < sweep_repeat; ++rep) {
          routing::ShardedEngineConfig sharded;
          sharded.shards = shards;
          const auto start = std::chrono::steady_clock::now();
          metrics = routing::run_scheme_sharded(sweep_scenario, scheme,
                                                scheme_config, sharded);
          const std::chrono::duration<double> wall =
              std::chrono::steady_clock::now() - start;
          best_wall = std::min(best_wall, wall.count());
        }
        point.wall_s += best_wall;
        point.events += metrics.scheduler_events;
        point.critical_path += metrics.shard_critical_path_events;
      }
      sweep.push_back(point);
    }

    common::Table sweep_table({"shards", "wall_s", "events", "events/s",
                               "measured_x", "projected_x"});
    const double base_eps = sweep.front().events_per_sec();
    for (const auto& p : sweep) {
      const auto row = sweep_table.add_row();
      sweep_table.set(row, 0, std::to_string(p.shards));
      sweep_table.set(row, 1, common::format_double(p.wall_s, 4));
      sweep_table.set(row, 2, std::to_string(p.events));
      sweep_table.set(row, 3, common::format_double(p.events_per_sec(), 0));
      sweep_table.set(row, 4, common::format_double(
                                  base_eps > 0 ? p.events_per_sec() / base_eps
                                               : 0.0,
                                  2));
      sweep_table.set(row, 5, common::format_double(p.projected_speedup(), 2));
    }
    bench::emit("Shard scaling (4x Fig. 7 workload, all six schemes, " +
                    std::to_string(std::thread::hardware_concurrency()) +
                    " cores)",
                sweep_table, "engine_hotpath_shards");
  }

  write_json(json_path, "fig7_small_scale", bench::fast_mode(), repeat,
             epoch_s, scenario.payments.size(), results, sweep_payments,
             sweep);
  return 0;
}
