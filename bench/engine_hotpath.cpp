// Engine hot-path microbench: drives the fixed Fig. 7 workload through all
// six schemes on a single thread and reports scheduler-event throughput —
// events/sec, ns/event, a peak-RSS proxy and the raw event count — as a
// table and as machine-readable BENCH_engine_hotpath.json. CI archives the
// JSON on every run so the perf trajectory of the event loop is recorded
// over time (compare `events_per_sec` across commits on the same machine).
//
// Usage: bench_engine_hotpath [--fast] [--repeat K] [--settlement-epoch MS]
//                             [--json PATH]
//   --fast        quarter-size workload (same as SPLICER_BENCH_FAST=1)
//   --repeat K    run each scheme K times, report the best wall time
//                 (default 3; metrics are identical across repeats)
//   --json PATH   JSON output path (default: BENCH_engine_hotpath.json,
//                 or $SPLICER_BENCH_JSON)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "routing/experiment.h"

namespace {

using namespace splicer;

/// Peak resident-set proxy in KiB: VmHWM from /proc/self/status where
/// available (Linux), 0 elsewhere. Process-wide high-water mark, so scheme
/// rows are cumulative — the per-run signal is the delta between rows.
long peak_rss_kib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

struct SchemeResult {
  std::string name;
  double best_wall_s = 0.0;
  routing::EngineMetrics metrics;
  long rss_after_kib = 0;

  [[nodiscard]] double events_per_sec() const {
    return best_wall_s > 0
               ? static_cast<double>(metrics.scheduler_events) / best_wall_s
               : 0.0;
  }
  [[nodiscard]] double ns_per_event() const {
    return metrics.scheduler_events > 0
               ? best_wall_s * 1e9 /
                     static_cast<double>(metrics.scheduler_events)
               : 0.0;
  }
};

void write_json(const std::string& path, const std::string& workload,
                bool fast, std::size_t repeat, double settlement_epoch_s,
                std::size_t payments,
                const std::vector<SchemeResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_engine_hotpath: cannot write " << path << "\n";
    return;
  }
  std::uint64_t total_events = 0;
  double total_wall = 0.0;
  for (const auto& r : results) {
    total_events += r.metrics.scheduler_events;
    total_wall += r.best_wall_s;
  }
  char buf[256];
  out << "{\n";
  out << "  \"bench\": \"engine_hotpath\",\n";
  out << "  \"workload\": \"" << workload << "\",\n";
  out << "  \"fast\": " << (fast ? "true" : "false") << ",\n";
  out << "  \"repeat\": " << repeat << ",\n";
  out << "  \"settlement_epoch_s\": " << settlement_epoch_s << ",\n";
  out << "  \"payments\": " << payments << ",\n";
  out << "  \"schemes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"scheme\": \"%s\", \"wall_s\": %.6f, "
                  "\"scheduler_events\": %llu, \"events_per_sec\": %.0f, "
                  "\"ns_per_event\": %.1f, \"peak_rss_kib\": %ld, "
                  "\"tsr\": %.6f}%s\n",
                  r.name.c_str(), r.best_wall_s,
                  static_cast<unsigned long long>(r.metrics.scheduler_events),
                  r.events_per_sec(), r.ns_per_event(), r.rss_after_kib,
                  r.metrics.tsr(), i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"total\": {\"scheduler_events\": %llu, \"wall_s\": %.6f, "
                "\"events_per_sec\": %.0f}\n",
                static_cast<unsigned long long>(total_events), total_wall,
                total_wall > 0
                    ? static_cast<double>(total_events) / total_wall
                    : 0.0);
  out << buf;
  out << "}\n";
  std::cout << "(json: " << path << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t repeat = 3;
  std::string json_path;
  if (const char* env = std::getenv("SPLICER_BENCH_JSON")) json_path = env;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      setenv("SPLICER_BENCH_FAST", "1", 1);
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::max<std::size_t>(1, std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (json_path.empty()) json_path = "BENCH_engine_hotpath.json";

  const double epoch_s = bench::settlement_epoch_s(argc, argv);
  auto config = bench::small_scale_config();
  const auto scenario = routing::prepare_scenario(config);

  routing::SchemeConfig scheme_config;
  scheme_config.engine.settlement_epoch_s = epoch_s;

  // All six schemes, not just the figure-comparison five: the hot path must
  // stay fast for every router's event mix (ShortestPath = atomic HTLCs).
  const std::vector<routing::Scheme> schemes{
      routing::Scheme::kSplicer,   routing::Scheme::kSpider,
      routing::Scheme::kFlash,     routing::Scheme::kLandmark,
      routing::Scheme::kA2l,       routing::Scheme::kShortestPath};

  std::vector<SchemeResult> results;
  for (const auto scheme : schemes) {
    SchemeResult result;
    result.name = routing::to_string(scheme);
    result.best_wall_s = std::numeric_limits<double>::infinity();
    for (std::size_t rep = 0; rep < repeat; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      result.metrics = routing::run_scheme(scenario, scheme, scheme_config);
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - start;
      result.best_wall_s = std::min(result.best_wall_s, wall.count());
    }
    result.rss_after_kib = peak_rss_kib();
    results.push_back(std::move(result));
  }

  common::Table table({"scheme", "wall_s", "events", "events/s", "ns/event",
                       "peak_rss_kib", "tsr"});
  for (const auto& r : results) {
    const auto row = table.add_row();
    table.set(row, 0, r.name);
    table.set(row, 1, common::format_double(r.best_wall_s, 4));
    table.set(row, 2, std::to_string(r.metrics.scheduler_events));
    table.set(row, 3, common::format_double(r.events_per_sec(), 0));
    table.set(row, 4, common::format_double(r.ns_per_event(), 1));
    table.set(row, 5, std::to_string(r.rss_after_kib));
    table.set(row, 6, common::format_percent(r.metrics.tsr()));
  }
  bench::emit("Engine hot path (Fig. 7 workload, 1 thread, best of " +
                  std::to_string(repeat) + ")",
              table, "engine_hotpath");

  write_json(json_path, "fig7_small_scale", bench::fast_mode(), repeat,
             epoch_s, scenario.payments.size(), results);
  return 0;
}
