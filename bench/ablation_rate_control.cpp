// Ablation bench (beyond the paper's tables; DESIGN.md SS6): quantifies
// what each protocol mechanism buys on the small-scale deadlock-prone
// workload.
//   1. full Splicer
//   2. no imbalance price (eta = 0): capacity-only pricing
//   3. no rate control (alpha = 0): windows + queues only
//   4. no source gating: congestion handled purely in-network
//   5. TU size bounds sweep (Min/Max-TU)
//
// Every variant is an independent simulation over the same scenario, so
// the whole bench is one parallel task grid.
//
// Usage: bench_ablation_rate_control [--threads N]

#include <iostream>

#include "bench_util.h"

using namespace splicer;

int main(int argc, char** argv) {
  std::cout << "=== Ablation: Splicer rate-control mechanisms ===\n"
            << (bench::fast_mode() ? "(fast mode: quarter workload)\n" : "");

  // Mechanism variants (first table), then the TU-bound sweep (second).
  std::vector<routing::SchemeTask> tasks;
  const auto add_variant = [&tasks](const std::string& name,
                                    routing::SchemeConfig config) {
    tasks.push_back({routing::Scheme::kSplicer, config, name});
  };
  add_variant("full Splicer", {});
  {
    routing::SchemeConfig config;
    config.protocol.eta = 0.0;  // imbalance price off (eq. 22 disabled)
    add_variant("no imbalance price (eta=0)", config);
  }
  {
    routing::SchemeConfig config;
    config.protocol.alpha = 0.0;  // rates frozen at initial (eq. 26 disabled)
    add_variant("no rate control (alpha=0)", config);
  }
  {
    routing::SchemeConfig config;
    config.protocol.source_gating = false;
    add_variant("no source gating", config);
  }
  {
    routing::SchemeConfig config;
    config.protocol.source_gating = false;
    config.protocol.eta = 0.0;
    config.protocol.alpha = 0.0;
    add_variant("windows/queues only (all pricing off)", config);
  }
  const std::size_t variant_count = tasks.size();

  const std::vector<std::pair<double, double>> tu_bounds{
      {1, 2}, {1, 4}, {1, 8}, {2, 8}, {1, 16}, {4, 16}};
  for (const auto& [min_tu, max_tu] : tu_bounds) {
    routing::SchemeConfig config;
    config.protocol.min_tu = common::tokens(min_tu);
    config.protocol.max_tu = common::tokens(max_tu);
    add_variant(common::format_double(min_tu, 0) + " / " +
                    common::format_double(max_tu, 0),
                config);
  }

  routing::ParallelRunner runner(
      {bench::thread_count(argc, argv), /*trials=*/1});
  const auto results =
      runner.run({bench::small_scale_config()}, tasks).front();

  common::Table table({"variant", "TSR", "throughput", "avg delay (ms)",
                       "TUs marked"});
  for (std::size_t t = 0; t < variant_count; ++t) {
    const auto& m = results[t].first();
    const auto row = table.add_row();
    table.set(row, 0, tasks[t].name());
    table.set(row, 1, common::format_percent(m.tsr()));
    table.set(row, 2, common::format_percent(m.normalized_throughput()));
    table.set(row, 3, m.average_delay_s() * 1000.0, 1);
    table.set(row, 4, static_cast<std::int64_t>(m.tus_marked));
  }
  bench::emit("rate-control ablation", table, "ablation_rate_control");

  common::Table tu_table({"Min-TU / Max-TU (tokens)", "TSR", "throughput",
                          "TUs per payment"});
  for (std::size_t t = variant_count; t < tasks.size(); ++t) {
    const auto& m = results[t].first();
    const auto row = tu_table.add_row();
    tu_table.set(row, 0, tasks[t].name());
    tu_table.set(row, 1, common::format_percent(m.tsr()));
    tu_table.set(row, 2, common::format_percent(m.normalized_throughput()));
    tu_table.set(row, 3,
                 static_cast<double>(m.tus_sent) /
                     static_cast<double>(m.payments_generated),
                 1);
  }
  bench::emit("TU size-bound sweep (paper default 1/4)", tu_table,
              "ablation_tu_bounds");
  return 0;
}
