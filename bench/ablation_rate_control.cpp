// Ablation bench (beyond the paper's tables; DESIGN.md SS6): quantifies
// what each protocol mechanism buys on the small-scale deadlock-prone
// workload.
//   1. full Splicer
//   2. no imbalance price (eta = 0): capacity-only pricing
//   3. no rate control (alpha = 0): windows + queues only
//   4. no source gating: congestion handled purely in-network
//   5. TU size bounds sweep (Min/Max-TU)

#include <iostream>

#include "bench_util.h"

using namespace splicer;

int main() {
  std::cout << "=== Ablation: Splicer rate-control mechanisms ===\n"
            << (bench::fast_mode() ? "(fast mode: quarter workload)\n" : "");
  const auto scenario = routing::prepare_scenario(bench::small_scale_config());

  common::Table table({"variant", "TSR", "throughput", "avg delay (ms)",
                       "TUs marked"});
  const auto run_variant = [&](const std::string& name,
                               routing::SchemeConfig config) {
    const auto m = routing::run_scheme(scenario, routing::Scheme::kSplicer, config);
    const auto row = table.add_row();
    table.set(row, 0, name);
    table.set(row, 1, common::format_percent(m.tsr()));
    table.set(row, 2, common::format_percent(m.normalized_throughput()));
    table.set(row, 3, m.average_delay_s() * 1000.0, 1);
    table.set(row, 4, static_cast<std::int64_t>(m.tus_marked));
  };

  run_variant("full Splicer", {});
  {
    routing::SchemeConfig config;
    config.protocol.eta = 0.0;  // imbalance price off (eq. 22 disabled)
    run_variant("no imbalance price (eta=0)", config);
  }
  {
    routing::SchemeConfig config;
    config.protocol.alpha = 0.0;  // rates frozen at initial (eq. 26 disabled)
    run_variant("no rate control (alpha=0)", config);
  }
  {
    routing::SchemeConfig config;
    config.protocol.source_gating = false;
    run_variant("no source gating", config);
  }
  {
    routing::SchemeConfig config;
    config.protocol.source_gating = false;
    config.protocol.eta = 0.0;
    config.protocol.alpha = 0.0;
    run_variant("windows/queues only (all pricing off)", config);
  }
  bench::emit("rate-control ablation", table, "ablation_rate_control");

  // TU size bounds sweep.
  common::Table tu_table({"Min-TU / Max-TU (tokens)", "TSR", "throughput",
                          "TUs per payment"});
  for (const auto& [min_tu, max_tu] :
       std::vector<std::pair<double, double>>{
           {1, 2}, {1, 4}, {1, 8}, {2, 8}, {1, 16}, {4, 16}}) {
    routing::SchemeConfig config;
    config.protocol.min_tu = common::tokens(min_tu);
    config.protocol.max_tu = common::tokens(max_tu);
    const auto m = routing::run_scheme(scenario, routing::Scheme::kSplicer, config);
    const auto row = tu_table.add_row();
    tu_table.set(row, 0,
                 common::format_double(min_tu, 0) + " / " +
                     common::format_double(max_tu, 0));
    tu_table.set(row, 1, common::format_percent(m.tsr()));
    tu_table.set(row, 2, common::format_percent(m.normalized_throughput()));
    tu_table.set(row, 3,
                 static_cast<double>(m.tus_sent) /
                     static_cast<double>(m.payments_generated),
                 1);
  }
  bench::emit("TU size-bound sweep (paper default 1/4)", tu_table,
              "ablation_tu_bounds");
  return 0;
}
