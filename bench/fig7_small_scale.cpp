// Reproduces paper Fig. 7: Splicer vs Spider/Flash/Landmark/A2L on the
// small-scale network (100 nodes), four panels (see fig_common.h).

#include "fig_common.h"

int main() {
  using namespace splicer;
  std::cout << "=== Fig. 7: small-scale network (100 nodes) ===\n"
            << (bench::fast_mode() ? "(fast mode: quarter workload)\n" : "");
  bench::run_figure("fig7", bench::small_scale_config());
  return 0;
}
