// Reproduces paper Fig. 7: Splicer vs Spider/Flash/Landmark/A2L on the
// small-scale network (100 nodes), four panels (see fig_common.h).
//
// Usage: bench_fig7_small_scale [--threads N]   (0 = all hardware threads)

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace splicer;
  std::cout << "=== Fig. 7: small-scale network (100 nodes) ===\n"
            << (bench::fast_mode() ? "(fast mode: quarter workload)\n" : "");
  bench::run_figure("fig7", bench::small_scale_config(),
                    bench::thread_count(argc, argv));
  return 0;
}
