// Reproduces paper Fig. 7: Splicer vs Spider/Flash/Landmark/A2L on the
// small-scale network (100 nodes), four panels (see fig_common.h).
//
// Usage: bench_fig7_small_scale [--threads N] [--settlement-epoch MS]
//                               [--trials K] [--no-retain]
//   --threads 0 (default) = all hardware threads
//   --settlement-epoch 0 (default) = exact per-hop settlement
//   --trials 1 (default) = single run; K > 1 = mean +/- 95% CI over
//                          derived-seed workloads
//   --no-retain = evict resolved payment states (metrics unchanged)

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace splicer;
  const double epoch_s = bench::settlement_epoch_s(argc, argv);
  const std::size_t trials = bench::trial_count(argc, argv);
  const bool retain = bench::retain_resolved(argc, argv);
  std::cout << "=== Fig. 7: small-scale network (100 nodes) ===\n"
            << (bench::fast_mode() ? "(fast mode: quarter workload)\n" : "");
  if (epoch_s > 0) {
    std::cout << "(batched settlement: epoch "
              << common::format_double(epoch_s * 1000, 1) << " ms)\n";
  }
  if (trials > 1) {
    std::cout << "(" << trials << " trials: mean +/- 95% CI)\n";
  }
  if (!retain) std::cout << "(retention off: resolved states evicted)\n";
  bench::run_figure("fig7", bench::small_scale_config(),
                    bench::thread_count(argc, argv), epoch_s, trials, retain);
  return 0;
}
