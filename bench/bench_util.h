#pragma once

// Shared helpers for the figure/table reproduction benches.
//
// Every bench accepts `--threads N` (0 = one worker per hardware thread,
// the default) to size the parallel experiment runner.
//
// Environment knobs:
//   SPLICER_BENCH_FAST=1          quarter-size workloads (smoke runs / CI)
//   SPLICER_BENCH_SEED=N          override the base seed (default 42)
//   SPLICER_BENCH_CSV=dir         also write each table as CSV into `dir`
//   SPLICER_BENCH_THREADS=N       default for --threads
//   SPLICER_BENCH_SETTLE_EPOCH_MS=X  default for --settlement-epoch
//   SPLICER_BENCH_TRIALS=K        default for --trials (mean +/- 95% CI)
//   SPLICER_BENCH_WORKLOAD=KIND   synthetic|trace|bursty|hotspot
//   SPLICER_BENCH_TRACE=path      trace CSV for SPLICER_BENCH_WORKLOAD=trace
//   SPLICER_BENCH_STREAMING=1     engines pull payments lazily (no
//                                 materialised workload vector)
//   SPLICER_BENCH_NO_RETAIN=1     evict resolved payment states (the
//                                 retention contract; metrics unchanged,
//                                 peak_resident_states stays bounded)
//   SPLICER_FULL_RECOMPUTE=1      force the legacy full rate-control tick
//                                 (parity gate for the incremental tick;
//                                 outputs byte-identical, only slower)

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.h"
#include "routing/experiment.h"
#include "routing/parallel_experiment.h"

namespace splicer::bench {

inline bool fast_mode() {
  const char* v = std::getenv("SPLICER_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

/// Worker count for the parallel runner: --threads N beats
/// SPLICER_BENCH_THREADS beats 0 (= all hardware threads).
inline std::size_t thread_count(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  const char* v = std::getenv("SPLICER_BENCH_THREADS");
  return v != nullptr ? std::strtoull(v, nullptr, 10) : 0;
}

inline std::uint64_t base_seed() {
  const char* v = std::getenv("SPLICER_BENCH_SEED");
  return v != nullptr ? std::strtoull(v, nullptr, 10) : 42;
}

/// Batched-settlement epoch in seconds: `--settlement-epoch MS` beats
/// SPLICER_BENCH_SETTLE_EPOCH_MS beats 0 (= exact per-hop settlement).
inline double settlement_epoch_s(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--settlement-epoch") == 0) {
      return std::strtod(argv[i + 1], nullptr) / 1000.0;
    }
  }
  const char* v = std::getenv("SPLICER_BENCH_SETTLE_EPOCH_MS");
  return v != nullptr ? std::strtod(v, nullptr) / 1000.0 : 0.0;
}

/// Trial count: `--trials K` beats SPLICER_BENCH_TRIALS beats 1. With
/// K > 1 the figure tables print mean +/- 95% CI over derived-seed trials.
inline std::size_t trial_count(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0) {
      return std::max<std::size_t>(1, std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  const char* v = std::getenv("SPLICER_BENCH_TRIALS");
  return v != nullptr ? std::max<std::size_t>(1, std::strtoull(v, nullptr, 10))
                      : 1;
}

/// Retention contract: `--no-retain` (or SPLICER_BENCH_NO_RETAIN=1) makes
/// every engine run evict resolved payment states. Default keeps them (the
/// CI byte-identity path; reported metrics are identical either way).
inline bool retain_resolved(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-retain") == 0) return false;
  }
  const char* v = std::getenv("SPLICER_BENCH_NO_RETAIN");
  return v == nullptr || v[0] != '1';
}

/// Incremental-tick parity knob: SPLICER_FULL_RECOMPUTE=1 forces rate
/// routers into the legacy full per-tick sweep
/// (EngineConfig::full_recompute_ticks). CI diffs a forced-full fig7 run
/// against the default incremental run byte for byte; results are
/// identical either way, only wall time differs.
inline bool full_recompute_mode() {
  const char* v = std::getenv("SPLICER_FULL_RECOMPUTE");
  return v != nullptr && v[0] == '1';
}

/// Scales a payment count down in fast mode.
inline std::size_t scaled(std::size_t n) { return fast_mode() ? n / 4 : n; }

/// Applies the SPLICER_BENCH_WORKLOAD / _TRACE / _STREAMING overrides so
/// every figure bench can replay traces or run the bursty/hotspot
/// generators without recompiling. No env set = untouched config (the CI
/// byte-identity path).
inline void apply_workload_env(routing::ScenarioConfig& config) {
  if (const char* kind = std::getenv("SPLICER_BENCH_WORKLOAD")) {
    config.workload.kind = pcn::workload_kind_from(kind);
  }
  if (const char* trace = std::getenv("SPLICER_BENCH_TRACE")) {
    config.workload.trace_file = trace;
  }
  if (const char* streaming = std::getenv("SPLICER_BENCH_STREAMING")) {
    config.workload.streaming = streaming[0] == '1';
  }
}

/// Prints a titled table and optionally mirrors it to CSV.
inline void emit(const std::string& title, const common::Table& table,
                 const std::string& csv_name) {
  std::cout << "\n## " << title << "\n\n" << table.render();
  if (const char* dir = std::getenv("SPLICER_BENCH_CSV")) {
    const std::string path = std::string(dir) + "/" + csv_name + ".csv";
    table.write_csv(path);
    std::cout << "(csv: " << path << ")\n";
  }
}

/// Small-scale scenario defaults (paper: 100 nodes).
inline routing::ScenarioConfig small_scale_config() {
  routing::ScenarioConfig config;
  config.seed = base_seed();
  config.topology.nodes = 100;
  config.placement.candidate_count = 10;
  config.placement.omega = 0.1;
  config.workload.payment_count = scaled(1500);
  config.workload.horizon_seconds = 25.0;
  apply_workload_env(config);
  return config;
}

/// Large-scale scenario defaults (paper: 3000 nodes). The offered load
/// grows with the client population, which is what stresses single-hub
/// and source-routing schemes at scale.
inline routing::ScenarioConfig large_scale_config() {
  routing::ScenarioConfig config;
  config.seed = base_seed();
  config.topology.nodes = 3000;
  config.placement.candidate_count = 30;
  config.placement.prefer_exact = false;  // double greedy (paper Alg. 1)
  config.placement.omega = 0.1;
  config.workload.payment_count = scaled(3000);
  config.workload.horizon_seconds = 18.0;
  apply_workload_env(config);
  return config;
}

}  // namespace splicer::bench
